(** MiniC builtin functions, shared between the static checker and the
    interpreter.

    The runtime-facing builtins ([malloc], [free]) route through the active
    detection tool; memory-touching builtins ([memset], [memcpy], byte and
    word accesses) go through the machine so the hardware watchpoints see
    them — which is how a [memcpy] over-read reproduces Heartbleed's trap. *)

type arity =
  | Exact of int
  | Between of int * int  (** inclusive *)
  | At_least of int

val arity : string -> arity option
(** [arity name] is [Some a] iff [name] is a builtin. *)

val is_builtin : string -> bool

val all : (string * arity) list
(** Name/arity listing, for documentation and tests. *)
