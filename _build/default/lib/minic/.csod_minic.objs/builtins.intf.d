lib/minic/builtins.mli:
