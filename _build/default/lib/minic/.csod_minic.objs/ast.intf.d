lib/minic/ast.mli: Srcloc
