lib/minic/interp.mli: Machine Program Srcloc Tool
