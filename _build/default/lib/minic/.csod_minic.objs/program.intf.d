lib/minic/program.mli: Ast Format Srcloc
