lib/minic/interp.ml: Alloc_ctx Array Ast Buffer Cost Fun List Machine Printf Prng Program Sparse_mem Srcloc String Threads Tool
