lib/minic/builtins.ml: List
