lib/minic/token.mli: Format Srcloc
