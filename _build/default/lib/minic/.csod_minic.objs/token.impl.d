lib/minic/token.ml: Format Printf Srcloc
