lib/minic/program.ml: Ast Format Hashtbl Lexer List Option Parser Printf Sema Srcloc String
