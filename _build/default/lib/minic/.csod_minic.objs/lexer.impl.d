lib/minic/lexer.ml: Buffer List Printf Srcloc String Token
