lib/minic/sema.mli: Ast Srcloc
