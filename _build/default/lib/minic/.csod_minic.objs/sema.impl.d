lib/minic/sema.ml: Ast Builtins Hashtbl List Printf Srcloc
