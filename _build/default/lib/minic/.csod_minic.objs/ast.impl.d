lib/minic/ast.ml: List Srcloc
