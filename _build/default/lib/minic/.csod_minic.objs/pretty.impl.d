lib/minic/pretty.ml: Ast Buffer Format List String
