(** Simulated thread registry.

    The simulation is cooperatively scheduled inside one OCaml runtime, but
    thread identity matters to the reproduction in three ways that mirror
    the paper: watchpoints are installed {e per alive thread} (Figure 3's
    [FOR_EACH_THREAD] loop), the SIGTRAP must be delivered to the thread
    that performed the access (Section III-C1), and install/remove cost
    scales with the number of alive threads.  CSOD learns about threads by
    interposing on [pthread_create]; here, tools subscribe to spawn/exit
    notifications instead. *)

type tid = int

type t

val create : unit -> t
(** Fresh registry containing only the main thread (tid 0, named "main"),
    which is also the current thread. *)

val spawn : t -> name:string -> tid
(** Register a new alive thread, firing spawn subscribers — the analogue of
    an interposed [pthread_create]. *)

val exit_thread : t -> tid -> unit
(** Mark a thread dead, firing exit subscribers.  The main thread cannot
    exit this way.  Raises [Invalid_argument] for unknown or dead tids. *)

val alive : t -> tid list
(** Alive tids in spawn order (the paper's [aliveThreads] list). *)

val alive_count : t -> int

val name : t -> tid -> string
(** Raises [Not_found] for unknown tids. *)

val current : t -> tid
val set_current : t -> tid -> unit
(** Switch the executing thread; accesses and traps are attributed to it. *)

val on_spawn : t -> (tid -> unit) -> unit
(** Subscribe to thread creation (tools use this to install their existing
    watchpoints on the new thread). *)

val on_exit : t -> (tid -> unit) -> unit
