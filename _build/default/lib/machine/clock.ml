type t = { mutable cycles : int }

let create () = { cycles = 0 }

let advance t n =
  if n < 0 then invalid_arg "Clock.advance: negative cycles";
  t.cycles <- t.cycles + n

let cycles t = t.cycles
let seconds t = float_of_int t.cycles /. float_of_int Cost.cycles_per_second
let reset t = t.cycles <- 0

module Region = struct
  type clock = t
  type nonrec t = { clock : clock; at_start : int }

  let start clock = { clock; at_start = clock.cycles }
  let stop t = t.clock.cycles - t.at_start
end
