lib/machine/machine.ml: Clock Cost Fun Hw_breakpoint Prng Sparse_mem Stats Threads
