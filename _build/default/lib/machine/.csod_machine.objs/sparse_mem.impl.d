lib/machine/sparse_mem.ml: Bytes Char Hashtbl Int64
