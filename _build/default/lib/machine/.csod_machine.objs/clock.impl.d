lib/machine/clock.ml: Cost
