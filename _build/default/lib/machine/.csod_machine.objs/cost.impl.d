lib/machine/cost.ml:
