lib/machine/sparse_mem.mli:
