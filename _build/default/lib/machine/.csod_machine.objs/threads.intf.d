lib/machine/threads.mli:
