lib/machine/machine.mli: Clock Hw_breakpoint Prng Sparse_mem Stats Threads
