lib/machine/hw_breakpoint.mli: Threads
