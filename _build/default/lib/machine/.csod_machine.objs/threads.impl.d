lib/machine/threads.ml: Hashtbl List Printf
