lib/machine/hw_breakpoint.ml: Hashtbl List Printf Threads
