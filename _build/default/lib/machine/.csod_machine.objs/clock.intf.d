lib/machine/clock.mli:
