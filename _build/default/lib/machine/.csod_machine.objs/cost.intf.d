lib/machine/cost.mli:
