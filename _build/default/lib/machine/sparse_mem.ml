type addr = int

let chunk_size = 65536

type t = { chunks : (int, Bytes.t) Hashtbl.t }

let create () = { chunks = Hashtbl.create 256 }

let chunk_for t addr =
  let idx = addr / chunk_size in
  match Hashtbl.find_opt t.chunks idx with
  | Some b -> b
  | None ->
    let b = Bytes.make chunk_size '\000' in
    Hashtbl.add t.chunks idx b;
    b

let check addr = if addr < 0 then invalid_arg "Sparse_mem: negative address"

let read_u8 t addr =
  check addr;
  match Hashtbl.find_opt t.chunks (addr / chunk_size) with
  | None -> 0
  | Some b -> Char.code (Bytes.unsafe_get b (addr mod chunk_size))

let write_u8 t addr v =
  check addr;
  let b = chunk_for t addr in
  Bytes.unsafe_set b (addr mod chunk_size) (Char.unsafe_chr (v land 0xff))

let read_u64 t addr =
  check addr;
  (* Fast path: the whole word lies inside one chunk. *)
  let off = addr mod chunk_size in
  if off <= chunk_size - 8 then
    match Hashtbl.find_opt t.chunks (addr / chunk_size) with
    | None -> 0L
    | Some b -> Bytes.get_int64_le b off
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_u8 t (addr + i)))
    done;
    !v
  end

let write_u64 t addr v =
  check addr;
  let off = addr mod chunk_size in
  if off <= chunk_size - 8 then Bytes.set_int64_le (chunk_for t addr) off v
  else
    for i = 0 to 7 do
      write_u8 t (addr + i) (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

let read_int t addr = Int64.to_int (read_u64 t addr)
let write_int t addr v = write_u64 t addr (Int64.of_int v)

let fill t addr len v =
  if len < 0 then invalid_arg "Sparse_mem.fill: negative length";
  for i = 0 to len - 1 do
    write_u8 t (addr + i) v
  done

let touched_bytes t = Hashtbl.length t.chunks * chunk_size
