type tid = int

type info = { name : string; mutable alive : bool }

type t = {
  table : (tid, info) Hashtbl.t;
  mutable order : tid list; (* reversed spawn order *)
  mutable next : tid;
  mutable current : tid;
  mutable spawn_subs : (tid -> unit) list;
  mutable exit_subs : (tid -> unit) list;
}

let create () =
  let t =
    { table = Hashtbl.create 16; order = []; next = 0; current = 0;
      spawn_subs = []; exit_subs = [] }
  in
  Hashtbl.add t.table 0 { name = "main"; alive = true };
  t.order <- [ 0 ];
  t.next <- 1;
  t

let spawn t ~name =
  let tid = t.next in
  t.next <- tid + 1;
  Hashtbl.add t.table tid { name; alive = true };
  t.order <- tid :: t.order;
  List.iter (fun f -> f tid) (List.rev t.spawn_subs);
  tid

let info_exn t tid =
  match Hashtbl.find_opt t.table tid with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Threads: unknown tid %d" tid)

let exit_thread t tid =
  if tid = 0 then invalid_arg "Threads.exit_thread: main thread cannot exit";
  let i = info_exn t tid in
  if not i.alive then invalid_arg (Printf.sprintf "Threads.exit_thread: tid %d already dead" tid);
  i.alive <- false;
  if t.current = tid then t.current <- 0;
  List.iter (fun f -> f tid) (List.rev t.exit_subs)

let alive t =
  List.rev t.order
  |> List.filter (fun tid -> (Hashtbl.find t.table tid).alive)

let alive_count t = List.length (alive t)

let name t tid =
  match Hashtbl.find_opt t.table tid with
  | Some i -> i.name
  | None -> raise Not_found

let current t = t.current

let set_current t tid =
  let i = info_exn t tid in
  if not i.alive then invalid_arg "Threads.set_current: dead thread";
  t.current <- tid

let on_spawn t f = t.spawn_subs <- f :: t.spawn_subs
let on_exit t f = t.exit_subs <- f :: t.exit_subs
