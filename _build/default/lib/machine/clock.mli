(** Virtual cycle clock.

    All time in the simulation is counted in virtual CPU cycles.  The paper's
    mechanism has two real time dependencies — the 10-second allocation-burst
    window and the ~10-second decay of an installed watchpoint's probability
    (Sections III-B2, III-C2) — so executions must experience a consistent
    notion of elapsed time.  The clock also underlies the Figure 7 overhead
    accounting. *)

type t

val create : unit -> t
(** Fresh clock at cycle 0. *)

val advance : t -> int -> unit
(** [advance t cycles] moves time forward.  Negative values are rejected. *)

val cycles : t -> int
(** Total cycles elapsed. *)

val seconds : t -> float
(** Elapsed virtual seconds ([cycles / Cost.cycles_per_second]). *)

val reset : t -> unit
(** Rewind to cycle 0 (used between repeated executions). *)

module Region : sig
  (** Scoped cycle accounting: measures the cycles attributed to a region of
      execution, e.g. "cycles spent inside the CSOD runtime" versus "cycles
      of application work".  Regions may not overlap. *)

  type clock := t
  type t

  val start : clock -> t
  val stop : t -> int
  (** Cycles advanced on the clock since [start]. *)
end
