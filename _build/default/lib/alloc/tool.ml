type access_kind = Read | Write

type t = {
  name : string;
  malloc : size:int -> ctx:Alloc_ctx.t -> int;
  free : ptr:int -> unit;
  on_access : addr:int -> len:int -> kind:access_kind -> site:int -> unit;
  at_exit : unit -> unit;
  extra_resident_bytes : unit -> int;
}

let baseline heap =
  { name = "baseline";
    malloc = (fun ~size ~ctx:_ -> Heap.malloc heap size);
    free = (fun ~ptr -> Heap.free heap ptr);
    on_access = (fun ~addr:_ ~len:_ ~kind:_ ~site:_ -> ());
    at_exit = (fun () -> ());
    extra_resident_bytes = (fun () -> 0) }
