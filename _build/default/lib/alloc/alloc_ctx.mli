(** Allocation calling-context handles.

    The paper identifies an allocation's calling context cheaply by the pair
    {e (first-level call site above the runtime, stack offset)}
    (Section III-A1), obtaining the full call chain with the expensive
    [backtrace] walk only the first time a pair is seen.  A handle carries
    exactly those three capabilities: the two cheap key components, and a
    thunk for the full walk.  The interpreter (or a synthetic workload
    driver) constructs handles; detection tools consume them. *)

type t = {
  callsite : int;
      (** Code address of the statement invoking the allocation — what
          [__builtin_return_address] would yield one level above the
          runtime. *)
  stack_offset : int;
      (** Simulated stack-pointer offset at the allocation.  Two textually
          identical call sites reached through different call chains differ
          here (different frames are live), which is why the paper's pair is
          almost always unique per context. *)
  backtrace : unit -> int list;
      (** Full calling context, innermost first.  Expensive; tools call it
          once per new context and for failure reports. *)
}

type key = int * int
(** The cheap identifying pair. *)

val key : t -> key
val equal_key : key -> key -> bool
val hash_key : key -> int

val synthetic : ?stack_offset:int -> callsite:int -> unit -> t
(** Handle for synthetic workloads: the backtrace is just the call site.
    [stack_offset] defaults to 0. *)
