lib/alloc/size_class.ml:
