lib/alloc/tool.mli: Alloc_ctx Heap
