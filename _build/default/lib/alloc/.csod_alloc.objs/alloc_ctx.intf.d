lib/alloc/alloc_ctx.mli:
