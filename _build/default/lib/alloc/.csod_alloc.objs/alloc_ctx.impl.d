lib/alloc/alloc_ctx.ml:
