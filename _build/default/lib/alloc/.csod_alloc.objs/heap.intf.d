lib/alloc/heap.mli: Machine
