lib/alloc/heap.ml: Array Cost Hashtbl Machine Option Printf Size_class Sparse_mem
