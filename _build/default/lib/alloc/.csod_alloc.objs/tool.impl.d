lib/alloc/tool.ml: Alloc_ctx Heap
