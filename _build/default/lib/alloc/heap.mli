(** The heap allocator substrate.

    A segregated-free-list allocator over the simulated machine's address
    space, standing in for the glibc allocator the paper interposes on.
    Detection tools do not subclass it; they {e wrap} it, exactly as an
    LD_PRELOAD interposer wraps [malloc]/[free] — requesting padded sizes
    and offsetting the returned pointer (CSOD's 32-byte header + 8-byte
    canary, ASan's redzones).

    Adjacent blocks within a size class are contiguous, so a continuous
    one-word overflow from a block whose requested size equals its block
    size lands on its neighbour; smaller requests overflow into the block's
    own padding first.  Both situations occur in the paper's nine bugs. *)

type t

exception Error of string
(** Raised on heap misuse: double free, free of a non-heap pointer, or
    realloc of an unknown pointer.  The message identifies the pointer. *)

val create : Machine.t -> t
(** An empty heap drawing address space from the machine via [sbrk]. *)

val machine : t -> Machine.t

(** {1 Allocation entry points} *)

val malloc : t -> int -> int
(** [malloc t size] reserves at least [size] bytes, 16-byte aligned.  Every
    call advances the clock by {!Cost.malloc_base}. *)

val free : t -> int -> unit
(** Return a block.  Raises {!Error} on double free or unknown pointers. *)

val calloc : t -> count:int -> size:int -> int
(** Zeroing allocation. *)

val realloc : t -> int -> int -> int
(** [realloc t ptr size]; [ptr = 0] behaves as [malloc], [size = 0] frees
    and returns 0.  Contents are copied up to the smaller size. *)

val memalign : t -> alignment:int -> size:int -> int
(** Power-of-two alignments up to 4096.  May over-allocate and return an
    interior pointer; [free] accepts that pointer. *)

(** {1 Introspection} *)

val size_of : t -> int -> int option
(** Requested size of a live object, by its exact base address. *)

val is_live : t -> int -> bool

val usable_size : t -> int -> int option
(** Full block size backing a live object (the malloc_usable_size analogue);
    the headroom between requested and usable size is where tools place
    canaries. *)

val iter_live : (addr:int -> size:int -> unit) -> t -> unit
(** Walk every live object (address and requested size), in no particular
    order.  CSOD's Termination Handling Unit uses this to verify the
    canary of every still-allocated object at exit. *)

val live_objects : t -> int
val live_bytes : t -> int
(** Sum of requested sizes of live objects. *)

val peak_live_bytes : t -> int
val total_allocs : t -> int
val total_frees : t -> int

val resident_bytes : t -> int
(** Peak bytes of blocks simultaneously backing live objects, plus
    allocator metadata — the substrate's contribution to Table V's
    resident-memory accounting (free-list slack is reusable address
    space, not resident pages). *)
