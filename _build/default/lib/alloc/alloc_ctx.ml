type t = { callsite : int; stack_offset : int; backtrace : unit -> int list }

type key = int * int

let key t = (t.callsite, t.stack_offset)
let equal_key (a1, b1) (a2, b2) = a1 = a2 && b1 = b2

let hash_key (a, b) =
  (* Mix the two components; both are small non-negative ints in practice. *)
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) in
  h land max_int

let synthetic ?(stack_offset = 0) ~callsite () =
  { callsite; stack_offset; backtrace = (fun () -> [ callsite ]) }
