let min_class = 16
let max_class = 4096
let align = 16

type t = Small of int | Large of int

let classify size =
  if size < 0 then invalid_arg "Size_class.classify: negative size";
  let size = if size = 0 then 1 else size in
  let rounded = (size + align - 1) / align * align in
  if size <= max_class then Small rounded else Large rounded

let block_size = function Small n -> n | Large n -> n

let class_index = function
  | Small n -> Some ((n / align) - 1)
  | Large _ -> None

let num_small_classes = max_class / align
