(** Segregated size classes for the heap allocator.

    Classes advance in 16-byte steps up to {!max_class} (matching the
    fine-grained small bins of production allocators); requests above
    [max_class] are "large" and rounded to 16-byte granules.  The layout
    matters to the reproduction twice over: object spacing determines
    whether a one-word overflow lands on the adjacent object or on
    padding (CSOD places the watchpoint and evidence canary immediately
    past the {e requested} size, inside that padding), and per-object
    padding waste feeds Table V's memory accounting. *)

val min_class : int
(** 16 bytes. *)

val max_class : int
(** 4096 bytes. *)

val align : int
(** Allocation granule, 16 bytes. *)

type t =
  | Small of int  (** 16-byte-stepped block size in [\[min_class, max_class\]] *)
  | Large of int  (** 16-byte-rounded byte size above [max_class] *)

val classify : int -> t
(** [classify size] for a request of [size] bytes ([size >= 0]; a request of
    0 is treated as 1, matching malloc). *)

val block_size : t -> int
(** Bytes actually reserved for an object of this class. *)

val class_index : t -> int option
(** Index of a [Small] class in the per-class table; [None] for [Large]. *)

val num_small_classes : int
