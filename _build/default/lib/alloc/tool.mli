(** The interposition surface shared by all detection tools.

    A tool is what LD_PRELOAD makes of a runtime library: it sees every
    allocation (with a calling-context handle) and every deallocation, may
    pad and offset the pointers it returns, observes instrumented memory
    accesses (for static-instrumentation baselines such as ASan), and gets a
    chance to run at program exit (CSOD's Termination Handling Unit).  The
    MiniC interpreter and the synthetic workload drivers both execute
    against this interface, so CSOD, ASan, and the no-op baseline are
    interchangeable. *)

type access_kind = Read | Write

type t = {
  name : string;
  malloc : size:int -> ctx:Alloc_ctx.t -> int;
      (** Allocate [size] usable bytes; the returned pointer is what the
          application sees (possibly offset past a tool header). *)
  free : ptr:int -> unit;
      (** Release an application pointer.  May raise {!Heap.Error} on heap
          misuse, or a tool-specific exception on detected corruption. *)
  on_access : addr:int -> len:int -> kind:access_kind -> site:int -> unit;
      (** Invoked for every {e instrumented} application access, before the
          hardware performs it.  [site] is the code address of the access.
          Tools without static instrumentation ignore this (CSOD's detection
          rides on the hardware watchpoints instead). *)
  at_exit : unit -> unit;
      (** End-of-execution hook. *)
  extra_resident_bytes : unit -> int;
      (** Tool-private resident memory (headers already live inside heap
          blocks; this covers side tables such as CSOD's context table or
          ASan's shadow), for Table V accounting. *)
}

val baseline : Heap.t -> t
(** The pass-through tool: raw heap, no checking.  Figure 7's "default
    Linux" configuration. *)
