let src = Logs.Src.create "csod" ~doc:"CSOD runtime decision trace"

module Log = (val Logs.src_log src : Logs.LOG)

let decision ~watched ~prob ~key:(site, off) ~addr =
  Log.debug (fun m ->
      m "alloc 0x%x ctx=(0x%x,%d) p=%.5f -> %s" addr site off prob
        (if watched then "WATCH" else "skip"))

let replaced ~victim ~by =
  Log.debug (fun m -> m "replace: evict watchpoint on 0x%x for 0x%x" victim by)

let removed_on_free ~addr = Log.debug (fun m -> m "free 0x%x: watchpoint removed" addr)

let trap ~addr ~kind ~tid =
  Log.debug (fun m -> m "TRAP %s at 0x%x on thread %d" kind addr tid)

let canary ~addr ~where =
  Log.debug (fun m -> m "CANARY corrupted on 0x%x (at %s)" addr where)
