(** Object layout for CSOD allocations (paper, Figures 2 and 5).

    Every CSOD allocation pads the raw heap block so that the word
    immediately past the object belongs to the object itself — that word is
    the watchpoint target (Figure 2), and under the evidence-based mode it
    additionally holds a random canary verified at deallocation and at exit
    (Figure 5).  With evidence enabled a 32-byte header precedes the
    object:

    {v RealObjectPtr | ObjectSize | CallingContextPtr | Identifier | Object | Canary v}

    The header lets [free] recover the raw block pointer (supporting
    memalign), the object size (locating the canary), and the allocation
    context; the identifier marks CSOD-managed objects.  All header/canary
    traffic uses unwatched accesses: the runtime must never trip the very
    watchpoint it planted. *)

val header_size : int
(** 32 bytes. *)

val canary_size : int
(** 8 bytes. *)

val identifier : int
(** Header magic marking CSOD-managed objects. *)

val rounded : int -> int
(** Requested size rounded up to the 8-byte word the hardware watches. *)

val padded_request : evidence:bool -> int -> int
(** Bytes to request from the raw heap for a [size]-byte application
    object: [rounded size + canary word], plus the header when [evidence]. *)

val app_ptr : evidence:bool -> base:int -> int
(** Application pointer within the raw block. *)

val base_ptr : evidence:bool -> app:int -> int

val boundary_addr : app:int -> size:int -> int
(** Address of the first word past the object — the watchpoint target, and
    the canary slot. *)

val plant : Machine.t -> base:int -> size:int -> ctx_id:int -> canary:int64 -> int
(** Write header and canary (evidence mode); returns the application
    pointer.  Charges {!Cost.canary_plant}. *)

val check : Machine.t -> app:int -> size:int -> expected:int64 -> bool
(** Is the canary intact?  Charges {!Cost.canary_check}. *)

val read_header : Machine.t -> app:int -> (int * int * int) option
(** [(real_base, size, ctx_id)] if the identifier matches, [None] for a
    foreign or corrupted header. *)
