type policy = Naive | Random | Near_fifo

type t = {
  initial_prob : float;
  degrade_per_alloc : float;
  watch_decay_factor : float;
  min_prob : float;
  burst_threshold : int;
  burst_window_sec : float;
  burst_prob : float;
  revive_prob : float;
  revive_period_sec : float;
  installed_halflife_sec : float;
  policy : policy;
  evidence : bool;
  combined_syscall : bool;
}

let default =
  { initial_prob = 0.5;
    degrade_per_alloc = 1e-5;
    watch_decay_factor = 0.5;
    min_prob = 1e-5;
    burst_threshold = 5_000;
    burst_window_sec = 10.0;
    burst_prob = 1e-6;
    revive_prob = 1e-4;
    revive_period_sec = 20.0;
    installed_halflife_sec = 10.0;
    policy = Near_fifo;
    evidence = true;
    combined_syscall = false }

let policy_name = function
  | Naive -> "naive"
  | Random -> "random"
  | Near_fifo -> "near-FIFO"

let pp_policy ppf p = Format.pp_print_string ppf (policy_name p)
