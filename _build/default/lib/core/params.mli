(** CSOD tuning parameters.

    The paper fixes these as compile-time macros (Sections III-B2, III-C2,
    IV-A) "which could be further adjusted based on the behavior of
    programs"; we expose them as a record so the ablation benchmarks can
    vary them.  {!default} is the paper's configuration. *)

type policy = Naive | Random | Near_fifo
(** Watchpoint replacement policies of Section III-C2. *)

type t = {
  initial_prob : float;
      (** Probability assigned to a never-seen calling context: 0.5 —
          "equally likely to either contain a bug or be bug-free". *)
  degrade_per_alloc : float;
      (** Absolute probability subtracted on {e every} allocation of a
          context: 0.001% = 1e-5. *)
  watch_decay_factor : float;
      (** Multiplier applied after a context is watched: 0.5. *)
  min_prob : float;
      (** Lower bound guaranteeing every context retains some chance:
          0.001% = 1e-5. *)
  burst_threshold : int;
      (** Allocation count within the burst window that triggers throttling:
          5,000. *)
  burst_window_sec : float;
      (** Length of the burst window: 10 s. *)
  burst_prob : float;
      (** Throttled probability while bursting: 0.0001% = 1e-6.  When the
          window elapses the context returns to [min_prob]. *)
  revive_prob : float;
      (** Reviving mechanism (Section IV-A): contexts stuck at [min_prob]
          are randomly boosted to 0.01% = 1e-4 ... *)
  revive_period_sec : float;
      (** ... after this much time at the floor (with a coin flip per
          allocation once eligible). *)
  installed_halflife_sec : float;
      (** An installed watchpoint's effective probability halves every this
          many seconds, so long-quiet objects become replaceable: 10 s. *)
  policy : policy;
      (** Replacement policy; the paper's headline numbers use
          [Near_fifo]. *)
  evidence : bool;
      (** Enable the evidence-based canary mechanism of Section IV-B. *)
  combined_syscall : bool;
      (** The optimization the paper proposes but does not build
          (Section V-B): fold the eight per-thread install/remove syscalls
          into one custom kernel call each way.  Off by default — it
          "requires modification of the underlying OS". *)
}

val default : t
(** The paper's configuration: near-FIFO policy, evidence on. *)

val pp_policy : Format.formatter -> policy -> unit
val policy_name : policy -> string
