type t = (Alloc_ctx.key, unit) Hashtbl.t

let create () : t = Hashtbl.create 16
let mem t key = Hashtbl.mem t key
let add t key = if not (Hashtbl.mem t key) then Hashtbl.add t key ()
let count t = Hashtbl.length t
let keys t = Hashtbl.fold (fun k () acc -> k :: acc) t [] |> List.sort compare

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun (a, b) -> Printf.fprintf oc "%d %d\n" a b) (keys t))

let load path =
  let t = create () in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match String.split_on_char ' ' (String.trim line) with
              | [ a; b ] -> add t (int_of_string a, int_of_string b)
              | _ -> failwith ("Persist.load: malformed line: " ^ line)
          done
        with End_of_file -> ())
  end;
  t
