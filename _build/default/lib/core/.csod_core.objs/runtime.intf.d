lib/core/runtime.mli: Context_table Heap Machine Params Persist Report Tool Watch_table
