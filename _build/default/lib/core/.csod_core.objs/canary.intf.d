lib/core/canary.mli: Machine
