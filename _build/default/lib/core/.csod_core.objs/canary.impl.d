lib/core/canary.ml: Cost Machine Sparse_mem
