lib/core/persist.ml: Alloc_ctx Fun Hashtbl List Printf String Sys
