lib/core/report.ml: Alloc_ctx Buffer Format List Printf Threads
