lib/core/trace.ml: Logs
