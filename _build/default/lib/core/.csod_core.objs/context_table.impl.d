lib/core/context_table.ml: Alloc_ctx Chained_table Clock Cost Hashtbl List Machine Params Prng
