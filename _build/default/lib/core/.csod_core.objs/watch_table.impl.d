lib/core/watch_table.ml: Clock Context_table Hashtbl Hw_breakpoint List Machine Params Prng Ring Threads Trace
