lib/core/report.mli: Alloc_ctx Format Threads
