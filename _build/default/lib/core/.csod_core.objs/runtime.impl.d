lib/core/runtime.ml: Canary Clock Context_table Cost Heap Hw_breakpoint List Machine Params Persist Prng Report Threads Tool Trace Watch_table
