lib/core/trace.mli: Alloc_ctx Logs
