lib/core/context_table.mli: Alloc_ctx Machine Params Prng
