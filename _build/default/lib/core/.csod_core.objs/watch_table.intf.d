lib/core/watch_table.mli: Context_table Hw_breakpoint Machine Params Prng Threads
