lib/core/persist.mli: Alloc_ctx
