lib/asan/asan.mli: Heap Machine Tool
