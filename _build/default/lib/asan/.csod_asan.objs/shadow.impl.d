lib/asan/shadow.ml: Sparse_mem
