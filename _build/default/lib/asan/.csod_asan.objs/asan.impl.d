lib/asan/asan.ml: Clock Cost Hashtbl Heap List Machine Quarantine Shadow Tool
