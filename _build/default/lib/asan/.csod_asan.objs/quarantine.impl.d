lib/asan/quarantine.ml: List Queue
