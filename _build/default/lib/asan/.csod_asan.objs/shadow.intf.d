lib/asan/shadow.mli:
