lib/asan/quarantine.mli:
