(** ASan-style shadow memory.

    Address sanitizers map every 8 application bytes to one shadow byte
    recording which of those bytes are addressable.  This model keeps the
    same 1:8 granularity and poisoning semantics (byte-exact, via a per-
    granule bitmask) so that the redzone arithmetic — which overflow
    offsets are caught and which sail past — matches real ASan. *)

type t

val create : unit -> t

val poison : t -> addr:int -> len:int -> unit
(** Mark the byte range fully unaddressable (redzone/freed).  [addr] and
    [len] need not be 8-aligned; partial granules become partially
    addressable accordingly. *)

val unpoison : t -> addr:int -> len:int -> unit
(** Mark the range addressable.  Unpoisoning a 13-byte object leaves bytes
    13–15 of its final granule in whatever state they already had — the
    caller poisons the right redzone explicitly, as ASan's allocator
    does. *)

val is_poisoned : t -> addr:int -> len:int -> bool
(** Would an access of [len] bytes at [addr] touch unaddressable memory? *)

val touched_shadow_bytes : t -> int
(** Shadow storage materialized (chunk-granular, like a real flat shadow
    mapping), for memory accounting. *)
