(** ASan's deallocation quarantine.

    Freed blocks are not returned to the allocator immediately; they sit in
    a FIFO bounded by a byte budget, keeping their memory poisoned (the
    mechanism behind ASan's use-after-free detection, and a large part of
    its memory overhead in Table V).  When the budget is exceeded, the
    oldest blocks are evicted and truly freed. *)

type t

type block = { base : int; bytes : int }

val create : budget_bytes:int -> t

val push : t -> block -> block list
(** Enqueue a freed block; returns the blocks evicted to honor the budget
    (oldest first), which the caller must release to the real heap. *)

val held_bytes : t -> int
val held_blocks : t -> int

val drain : t -> block list
(** Empty the quarantine, returning everything held. *)
