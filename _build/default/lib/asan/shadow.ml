(* One shadow byte per 8-byte granule; the byte is a bitmask of the
   granule's poisoned bytes (bit i = byte i unaddressable).  Byte-exact —
   slightly more expressive than ASan's prefix encoding, but ASan aligns
   objects so the two coincide on every pattern an allocator produces.

   The shadow is backed by the same chunked sparse memory the machine
   uses, mirroring real ASan's flat 1:8 shadow mapping: lookups are a
   chunk probe plus a byte access, and shadow residency scales with the
   address range actually touched. *)
type t = { shadow : Sparse_mem.t }

let create () = { shadow = Sparse_mem.create () }

let mask_of_range gstart lo hi =
  (* bits for bytes of granule [gstart..gstart+8) within [lo, hi) *)
  let m = ref 0 in
  for b = 0 to 7 do
    let a = gstart + b in
    if a >= lo && a < hi then m := !m lor (1 lsl b)
  done;
  !m

let update t ~addr ~len f =
  if len < 0 then invalid_arg "Shadow: negative length";
  if len > 0 then begin
    let first = addr / 8 and last = (addr + len - 1) / 8 in
    for g = first to last do
      let m = mask_of_range (g * 8) addr (addr + len) in
      Sparse_mem.write_u8 t.shadow g (f (Sparse_mem.read_u8 t.shadow g) m)
    done
  end

let poison t ~addr ~len = update t ~addr ~len (fun old m -> old lor m)
let unpoison t ~addr ~len = update t ~addr ~len (fun old m -> old land lnot m)

let is_poisoned t ~addr ~len =
  if len <= 0 then false
  else begin
    let result = ref false in
    let first = addr / 8 and last = (addr + len - 1) / 8 in
    for g = first to last do
      if
        (not !result)
        && Sparse_mem.read_u8 t.shadow g land mask_of_range (g * 8) addr (addr + len)
           <> 0
      then result := true
    done;
    !result
  end

let touched_shadow_bytes t = Sparse_mem.touched_bytes t.shadow
