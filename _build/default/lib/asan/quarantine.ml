type block = { base : int; bytes : int }

type t = {
  budget : int;
  q : block Queue.t;
  mutable held : int;
}

let create ~budget_bytes =
  if budget_bytes < 0 then invalid_arg "Quarantine.create: negative budget";
  { budget = budget_bytes; q = Queue.create (); held = 0 }

let push t b =
  Queue.push b t.q;
  t.held <- t.held + b.bytes;
  let evicted = ref [] in
  while t.held > t.budget && not (Queue.is_empty t.q) do
    let old = Queue.pop t.q in
    t.held <- t.held - old.bytes;
    evicted := old :: !evicted
  done;
  List.rev !evicted

let held_bytes t = t.held
let held_blocks t = Queue.length t.q

let drain t =
  let all = List.of_seq (Queue.to_seq t.q) in
  Queue.clear t.q;
  t.held <- 0;
  all
