(** Figure 7: normalized runtime overhead, and Table V: memory usage.

    Each performance workload runs under five configurations — baseline,
    CSOD without evidence, CSOD, ASan with minimal (16-byte) redzones, and
    ASan with default (128-byte) redzones — and results are normalized to
    the baseline, exactly as Figure 7 normalizes to "the default Linux
    system".  Table V compares peak resident memory of the baseline, CSOD
    (evidence enabled, as the paper collected it), and ASan with minimal
    redzones. *)

type fig7_row = {
  app : string;
  csod_no_evidence : float;  (** normalized runtime, 1.0 = baseline *)
  csod : float;
  asan_min : float;
  asan : float;
}

val fig7 : ?progress:(string -> unit) -> unit -> fig7_row list

val fig7_averages : fig7_row list -> float * float * float * float
(** Arithmetic means across apps, in the same order as the row fields —
    the paper's "6.7% on average" style summary. *)

type table5_row = {
  app : string;
  original_kb : int;
  csod_kb : int;
  csod_pct : int;  (** CSOD / original, percent (Table V's "%" column) *)
  asan_kb : int;
  asan_pct : int;
}

val table5 : ?progress:(string -> unit) -> unit -> table5_row list

val table5_totals : table5_row list -> table5_row
(** The "Total" footer: sums and aggregate percentages. *)
