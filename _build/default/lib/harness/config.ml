type t =
  | Baseline
  | Csod of Params.t
  | Asan of { redzone : int }

let csod_default = Csod Params.default
let csod_no_evidence = Csod { Params.default with Params.evidence = false }

let csod_with_policy policy ~evidence =
  Csod { Params.default with Params.policy; evidence }

let asan_min_redzone = Asan { redzone = 16 }
let asan_default = Asan { redzone = 128 }

let label = function
  | Baseline -> "baseline"
  | Csod p ->
    if p.Params.evidence then
      Printf.sprintf "CSOD (%s)" (Params.policy_name p.Params.policy)
    else Printf.sprintf "CSOD w/o evidence (%s)" (Params.policy_name p.Params.policy)
  | Asan { redzone } ->
    if redzone <= 16 then "ASan w/ minimal redzones" else "ASan"

type instance = {
  tool : Tool.t;
  finish : unit -> unit;
  detected : unit -> bool;
  csod : Runtime.t option;
  asan : Asan.t option;
  startup_cycles : int;
}

let instantiate t ~machine ~heap ?(instrumented = fun _ -> true) ?store ?(seed = 0) () =
  match t with
  | Baseline ->
    { tool = Tool.baseline heap;
      finish = (fun () -> ());
      detected = (fun () -> false);
      csod = None;
      asan = None;
      startup_cycles = 0 }
  | Csod params ->
    let rt = Runtime.create ~params ?store ~seed ~machine ~heap () in
    { tool = Runtime.tool rt;
      finish = (fun () -> Runtime.finish rt);
      detected = (fun () -> Runtime.detected rt);
      csod = Some rt;
      asan = None;
      startup_cycles = Cost.csod_init }
  | Asan { redzone } ->
    let a = Asan.create ~redzone ~instrumented ~machine ~heap () in
    { tool = Asan.tool a;
      finish = (fun () -> ());
      detected = (fun () -> Asan.detected a);
      csod = None;
      asan = Some a;
      startup_cycles = Cost.asan_init }
