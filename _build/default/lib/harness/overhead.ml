type fig7_row = {
  app : string;
  csod_no_evidence : float;
  csod : float;
  asan_min : float;
  asan : float;
}

let fig7 ?(progress = fun _ -> ()) () =
  List.map
    (fun (p : Perf_profile.t) ->
      let run config = Perf_driver.run ~profile:p ~config () in
      let baseline = run Config.Baseline in
      let ov config = Perf_driver.overhead ~baseline (run config) in
      let row =
        { app = p.Perf_profile.name;
          csod_no_evidence = ov Config.csod_no_evidence;
          csod = ov Config.csod_default;
          asan_min = ov Config.asan_min_redzone;
          asan = ov Config.asan_default }
      in
      progress
        (Printf.sprintf "%s: csod %.3f, asan %.3f" row.app row.csod row.asan_min);
      row)
    (Perf_profile.all ())

let fig7_averages rows =
  let avg f = Stats.mean (List.map f rows) in
  ( avg (fun r -> r.csod_no_evidence),
    avg (fun r -> r.csod),
    avg (fun r -> r.asan_min),
    avg (fun r -> r.asan) )

type table5_row = {
  app : string;
  original_kb : int;
  csod_kb : int;
  csod_pct : int;
  asan_kb : int;
  asan_pct : int;
}

let pct a b = if b = 0 then 0 else int_of_float (float_of_int a /. float_of_int b *. 100.0 +. 0.5)

let table5 ?(progress = fun _ -> ()) () =
  List.map
    (fun (p : Perf_profile.t) ->
      let run config = Perf_driver.run ~profile:p ~config () in
      let original = (run Config.Baseline).Perf_driver.resident_kb in
      let csod = (run Config.csod_default).Perf_driver.resident_kb in
      let asan = (run Config.asan_min_redzone).Perf_driver.resident_kb in
      let row =
        { app = p.Perf_profile.name;
          original_kb = original;
          csod_kb = csod;
          csod_pct = pct csod original;
          asan_kb = asan;
          asan_pct = pct asan original }
      in
      progress (Printf.sprintf "%s: %d -> csod %d, asan %d" row.app original csod asan);
      row)
    (Perf_profile.all ())

let table5_totals rows =
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let original = sum (fun r -> r.original_kb) in
  let csod = sum (fun r -> r.csod_kb) in
  let asan = sum (fun r -> r.asan_kb) in
  { app = "Total";
    original_kb = original;
    csod_kb = csod;
    csod_pct = pct csod original;
    asan_kb = asan;
    asan_pct = pct asan original }
