(** Ablation study over CSOD's design choices.

    The paper fixes its sampling constants as compile-time macros and
    asserts "these numbers generally work well" (Section III-B2) without
    reporting the sensitivity; DESIGN.md calls that out as the natural
    ablation.  Each variant perturbs exactly one mechanism and re-runs the
    Table II detection experiment on a representative subset of
    applications (one always-detected, one mid-band, two hard ones), so
    the table shows what each rule contributes. *)

type variant = { name : string; params : Params.t; note : string }

val variants : unit -> variant list
(** The paper configuration first, then: no initial optimism (start at the
    floor), no per-allocation degradation, no halving after a watch, no
    lower bound, no reviving, no burst throttle, naive replacement, random
    replacement, and a no-evidence variant. *)

type row = { variant : string; detections : (string * int) list; runs : int }

val apps_under_test : unit -> Buggy_app.t list
(** Gzip, Heartbleed, Memcached, Zziplib. *)

val run : ?runs:int -> ?progress:(string -> unit) -> unit -> row list
(** Default 200 runs per (variant, app) cell — the ablation trades the
    paper's 1,000-run precision for breadth. *)
