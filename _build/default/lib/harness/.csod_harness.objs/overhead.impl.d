lib/harness/overhead.ml: Config List Perf_driver Perf_profile Printf Stats
