lib/harness/characteristics.ml: Buggy_app Config Execution List Oracle Perf_driver Perf_profile Printf Report Tool
