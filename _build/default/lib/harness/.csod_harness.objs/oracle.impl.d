lib/harness/oracle.ml: Alloc_ctx Buggy_app Execution Hashtbl Heap Interp Machine Printf Srcloc Tool
