lib/harness/config.ml: Asan Cost Params Printf Runtime Tool
