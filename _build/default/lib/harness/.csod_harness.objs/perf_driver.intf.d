lib/harness/perf_driver.mli: Config Perf_profile
