lib/harness/execution.ml: Asan Buffer Buggy_app Clock Config Heap Interp List Machine Option Printf Program Report Runtime Srcloc
