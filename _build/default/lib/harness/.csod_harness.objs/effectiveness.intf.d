lib/harness/effectiveness.mli: Buggy_app Params
