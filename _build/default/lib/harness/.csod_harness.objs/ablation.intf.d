lib/harness/ablation.mli: Buggy_app Params
