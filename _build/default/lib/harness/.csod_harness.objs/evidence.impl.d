lib/harness/evidence.ml: Buggy_app Config Execution List Params Persist Report
