lib/harness/perf_driver.ml: Alloc_ctx Array Clock Config Cost Heap Machine Perf_profile Printf Prng Runtime Threads Tool
