lib/harness/ablation.ml: Buggy_app Config Execution List Params Printf
