lib/harness/overhead.mli:
