lib/harness/evidence.mli: Buggy_app Params Report
