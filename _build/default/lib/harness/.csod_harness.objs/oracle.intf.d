lib/harness/oracle.mli: Alloc_ctx Buggy_app Execution Heap Machine Tool
