lib/harness/characteristics.mli:
