lib/harness/config.mli: Asan Heap Machine Params Persist Runtime Tool
