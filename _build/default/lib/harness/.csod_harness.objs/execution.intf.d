lib/harness/execution.mli: Asan Buggy_app Config Persist Report Runtime
