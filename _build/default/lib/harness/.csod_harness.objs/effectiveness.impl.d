lib/harness/effectiveness.ml: Buggy_app Config Execution List Params Printf Stats
