(** Tables I, III and IV: application characteristics.

    Table I is static registry data.  Table III comes from one oracle run
    per buggy application (ground-truth overflow position and census).
    Table IV replays each performance profile under the default CSOD
    configuration and reports the census plus watched-times the runtime
    observed. *)

type table1_row = { app : string; vulnerability : string; reference : string }

val table1 : unit -> table1_row list

type table3_row = {
  app : string;
  total_contexts : int;
  total_allocations : int;
  before_contexts : int;     (** census when the overflowed object was allocated *)
  before_allocations : int;
  detected_kind : string;    (** oracle-confirmed class, cross-checked with Table I *)
}

val table3 : unit -> table3_row list
(** Raises [Failure] if any app's oracle run sees no overflow (a model
    regression). *)

type table4_row = {
  app : string;
  loc : int;
  contexts : int;        (** profile census (the paper's published value) *)
  allocations : int;
  watched_times : int;   (** measured from the CSOD runtime on the replayed stream *)
  sim_scale : int;
}

val table4 : ?progress:(string -> unit) -> unit -> table4_row list
