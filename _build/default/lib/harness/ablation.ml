type variant = { name : string; params : Params.t; note : string }

let variants () =
  let d = { Params.default with Params.evidence = false } in
  [ { name = "paper"; params = d; note = "the paper's configuration (evidence off, as in Table II)" };
    { name = "no-initial-optimism";
      params = { d with Params.initial_prob = d.Params.min_prob };
      note = "new contexts start at the floor instead of 50%" };
    { name = "no-alloc-degradation";
      params = { d with Params.degrade_per_alloc = 0.0 };
      note = "probability no longer decays with allocation volume" };
    { name = "no-watch-halving";
      params = { d with Params.watch_decay_factor = 1.0 };
      note = "being watched does not reduce a context's probability" };
    { name = "no-floor";
      params = { d with Params.min_prob = 0.0; revive_prob = 0.0 };
      note = "probabilities may decay to zero and never recover" };
    { name = "no-reviving";
      params = { d with Params.revive_prob = d.Params.min_prob };
      note = "Section IV-A's reviving mechanism disabled" };
    { name = "no-burst-throttle";
      params = { d with Params.burst_threshold = max_int };
      note = "Section III-B2's burst rule disabled" };
    { name = "naive-policy"; params = { d with Params.policy = Params.Naive };
      note = "no preemption" };
    { name = "random-policy"; params = { d with Params.policy = Params.Random };
      note = "random victim scan" } ]

type row = { variant : string; detections : (string * int) list; runs : int }

let apps_under_test () =
  List.filter_map Buggy_app.by_name [ "Gzip"; "Heartbleed"; "Memcached"; "Zziplib" ]

let run ?(runs = 200) ?(progress = fun _ -> ()) () =
  List.map
    (fun v ->
      let detections =
        List.map
          (fun app ->
            let config = Config.Csod v.params in
            let detected = ref 0 in
            for seed = 1 to runs do
              let o = Execution.run ~app ~config ~seed () in
              if o.Execution.watchpoint_reports <> [] then incr detected
            done;
            progress (Printf.sprintf "%s / %s: %d/%d" v.name app.Buggy_app.name !detected runs);
            (app.Buggy_app.name, !detected))
          (apps_under_test ())
      in
      { variant = v.name; detections; runs })
    (variants ())
