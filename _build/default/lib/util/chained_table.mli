(** Chained hash table with per-bucket chains, modeling the paper's
    Sampling Management Unit table (Section III-B1).

    The paper keeps one global hash table mapping an allocation calling
    context to its sampling state, sized "to a large number to reduce hash
    conflicts", with a per-chain lock.  This module reproduces that
    structure: a fixed bucket array chosen at creation time, separate
    chaining, and per-bucket lock {e accounting} (the simulation is
    cooperatively scheduled, so locks are counted rather than contended;
    the counts feed the cost model). *)

type ('k, 'v) t

val create : ?buckets:int -> hash:('k -> int) -> equal:('k -> 'k -> bool) -> unit -> ('k, 'v) t
(** [create ~hash ~equal ()] builds a table.  [buckets] defaults to 65536,
    matching the paper's "large number" sizing. *)

val length : (_, _) t -> int
(** Number of bindings. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Chain lookup. *)

val find_or_add : ('k, 'v) t -> 'k -> default:(unit -> 'v) -> 'v
(** [find_or_add t k ~default] returns the existing binding for [k] or
    inserts [default ()] and returns it.  This is the hot-path operation
    performed on every allocation. *)

val replace : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Remove a binding if present. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Iterate over all bindings (used by the Termination Handling Unit to walk
    every context at exit). *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Fold over all bindings. *)

val lock_acquisitions : (_, _) t -> int
(** Number of per-bucket lock acquisitions performed so far; consumed by the
    cost model. *)

val max_chain_length : (_, _) t -> int
(** Longest current chain; exercised by tests to confirm the "very few
    conflicts" expectation from the paper. *)

val memory_bytes : (_, _) t -> int
(** Approximate resident size of the table structure itself (bucket array
    plus chain nodes), used for Table V style memory accounting. *)
