let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map (fun x -> if x <= 0.0 then neg_infinity else log x) xs in
    let m = mean logs in
    if m = neg_infinity then 0.0 else exp m

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  List.nth sorted idx

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

module Counter = struct
  type t = (string, int) Hashtbl.t

  let create () = Hashtbl.create 16

  let add t name n =
    let cur = try Hashtbl.find t name with Not_found -> 0 in
    Hashtbl.replace t name (cur + n)

  let incr t name = add t name 1
  let get t name = try Hashtbl.find t name with Not_found -> 0

  let to_list t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end
