lib/util/chained_table.mli:
