lib/util/ring.mli:
