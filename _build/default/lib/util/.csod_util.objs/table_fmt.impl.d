lib/util/table_fmt.ml: Buffer List Printf String
