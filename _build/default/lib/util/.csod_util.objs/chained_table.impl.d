lib/util/chained_table.ml: Array
