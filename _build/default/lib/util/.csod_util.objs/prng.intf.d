lib/util/prng.mli:
