lib/util/stats.mli:
