type align = Left | Right

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : [ `Row of string list | `Sep ] list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table_fmt.add_row: arity mismatch";
  t.rows <- `Row cells :: t.rows

let add_separator t = t.rows <- `Sep :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let aligns = List.map snd t.columns in
  let data_rows =
    List.rev_map (function `Row r -> Some r | `Sep -> None) t.rows
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row ->
            match row with
            | Some cells -> max w (String.length (List.nth cells i))
            | None -> w)
          (String.length h) data_rows)
      headers
  in
  let pad align w s =
    let fill = w - String.length s in
    if fill <= 0 then s
    else match align with
      | Left -> s ^ String.make fill ' '
      | Right -> String.make fill ' ' ^ s
  in
  let render_cells cells =
    let padded = List.mapi (fun i c -> pad (List.nth aligns i) (List.nth widths i) c) cells in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_cells headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (function
      | `Row cells ->
        Buffer.add_string buf (render_cells cells);
        Buffer.add_char buf '\n'
      | `Sep ->
        Buffer.add_string buf rule;
        Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ();
  print_newline ()

let fmt_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let fmt_percent ?(decimals = 1) f = Printf.sprintf "%.*f%%" decimals (f *. 100.0)

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + len / 3 + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
