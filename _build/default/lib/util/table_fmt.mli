(** Plain-text table rendering for the benchmark harness.

    The bench executable reproduces the paper's tables as aligned text; this
    module owns the layout so every table renders consistently. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : title:string -> columns:(string * align) list -> t
(** [create ~title ~columns] starts a table with a caption and a header row.
    The number of cells in every subsequent row must match [columns]. *)

val add_row : t -> string list -> unit
(** Append a data row.  Raises [Invalid_argument] on arity mismatch. *)

val add_separator : t -> unit
(** Append a horizontal rule (e.g. before an "Average" footer row). *)

val render : t -> string
(** Render with padded columns, a caption line, and box rules. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper ([decimals] defaults to 2). *)

val fmt_percent : ?decimals:int -> float -> string
(** [fmt_percent 0.067] is ["6.7%"] (with default 1 decimal). *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. ["57,464"], matching the paper's
    tables. *)
