type ('k, 'v) node = { key : 'k; mutable value : 'v; mutable next : ('k, 'v) node option }

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  buckets : ('k, 'v) node option array;
  mutable size : int;
  mutable locks : int;
}

let create ?(buckets = 65536) ~hash ~equal () =
  if buckets <= 0 then invalid_arg "Chained_table.create: buckets must be positive";
  { hash; equal; buckets = Array.make buckets None; size = 0; locks = 0 }

let length t = t.size

let bucket_of t k = (t.hash k land max_int) mod Array.length t.buckets

let rec chain_find equal k = function
  | None -> None
  | Some node -> if equal node.key k then Some node else chain_find equal k node.next

let find t k =
  t.locks <- t.locks + 1;
  match chain_find t.equal k t.buckets.(bucket_of t k) with
  | None -> None
  | Some node -> Some node.value

let find_or_add t k ~default =
  t.locks <- t.locks + 1;
  let b = bucket_of t k in
  match chain_find t.equal k t.buckets.(b) with
  | Some node -> node.value
  | None ->
    let v = default () in
    t.buckets.(b) <- Some { key = k; value = v; next = t.buckets.(b) };
    t.size <- t.size + 1;
    v

let replace t k v =
  t.locks <- t.locks + 1;
  let b = bucket_of t k in
  match chain_find t.equal k t.buckets.(b) with
  | Some node -> node.value <- v
  | None ->
    t.buckets.(b) <- Some { key = k; value = v; next = t.buckets.(b) };
    t.size <- t.size + 1

let remove t k =
  t.locks <- t.locks + 1;
  let b = bucket_of t k in
  let rec go = function
    | None -> None
    | Some node when t.equal node.key k ->
      t.size <- t.size - 1;
      node.next
    | Some node ->
      node.next <- go node.next;
      Some node
  in
  t.buckets.(b) <- go t.buckets.(b)

let iter f t =
  Array.iter
    (fun chain ->
      let rec go = function
        | None -> ()
        | Some node ->
          f node.key node.value;
          go node.next
      in
      go chain)
    t.buckets

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let lock_acquisitions t = t.locks

let max_chain_length t =
  Array.fold_left
    (fun best chain ->
      let rec len acc = function None -> acc | Some node -> len (acc + 1) node.next in
      max best (len 0 chain))
    0 t.buckets

let memory_bytes t =
  (* bucket array: one word per slot; each node: header + 3 fields. *)
  (Array.length t.buckets * 8) + (t.size * 4 * 8)
