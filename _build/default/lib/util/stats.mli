(** Small numeric helpers shared by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 for the empty list.  Figure 7 style normalized-overhead
    averages are conventionally geometric, and the harness reports both. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]]; nearest-rank on the sorted
    list.  Raises [Invalid_argument] on an empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into [\[lo, hi\]]. *)

val ratio : int -> int -> float
(** [ratio num den] as a float; 0 when [den = 0]. *)

module Counter : sig
  (** Named monotonic counters, used for operation accounting. *)

  type t

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)
end
