(** Heartbleed (CVE-2014-0160): Nginx-1.3.9 + OpenSSL-1.0.1f heartbeat over-read; Table III census 307 contexts / 5,403 allocations.

    See the implementation header for the full model rationale; fields
    are documented in {!Buggy_app}. *)

val app : App_def.t
