(* Heartbleed (CVE-2014-0160): the OpenSSL TLS heartbeat over-read.
   tls1_process_heartbeat trusts the attacker-declared payload length and
   memcpy's that many bytes out of the received record buffer — reading
   far past its end.  Following the paper (and HeapTherapy), the model is
   Nginx-1.3.9 + OpenSSL-1.0.1f: nginx start-up pins four long-lived
   configuration allocations (so the naive policy never has a free
   watchpoint when the record buffer arrives: 0/1000), OpenSSL
   initialization mints a few hundred one-shot allocation contexts through
   its BN_CTX pool, and a stream of HTTPS requests churns the heap before
   the malicious heartbeat lands.  Table III: 307 contexts, 5,403
   allocations; the record buffer is allocated at the very end from a
   fresh context, which is why the preempting policies catch the bug in
   roughly 40% of executions.

   input(0): declared heartbeat payload length — 4096 over-reads the
   80-byte record (buggy), 16 is honest (benign). *)

let nginx_main =
  {|
// nginx.c -- master process start-up (module nginx)
fn main() {
  var claimed = input(0);
  var cfg = ngx_palloc(256);       // #1: configuration, lives forever
  var cycle = ngx_palloc(192);     // #2: cycle structure, lives forever
  var log = ngx_palloc(64);        // #3: logger, lives forever
  var cert = ngx_palloc(128);      // #4: certificate store, lives forever
  var sess = ngx_palloc(1280);     // session ticket cache, lives forever
  cfg[0] = cycle;
  cfg[1] = log;
  cfg[2] = cert;
  cfg[3] = sess;
  ngx_ssl_init();
  ngx_process_cycle(claimed, cfg);
  print("nginx: worker exiting");
  return 0;
}

fn ngx_process_cycle(claimed, cfg) {
  var sess = cfg[3];
  var r = 0;
  while (r < 150) {
    ngx_http_request(r, sess);
    if (r % 5 == 0) { sleep_ms(300 + rand(300)); }
    r = r + 1;
  }
  // the malicious heartbeat arrives last
  var leaked = tls1_process_heartbeat(claimed);
  print("heartbeat bytes echoed:", leaked);
  return 0;
}
|}

let nginx_request =
  {|
// ngx_http_request.c -- per-request processing (module nginx)
fn conn_alloc(d, size) {
  // connection pool: the accept path depth varies with the listener
  if (d > 0) { return conn_alloc(d - 1, size); }
  return ngx_palloc(size);
}

fn ngx_http_request(r, sess) {
  var conn = conn_alloc(1 + (r % 8), 96);
  var hdr = ngx_palloc(160);
  var body = ngx_palloc(256);
  var n = 29;
  if (r == 17) { n = 25; }   // one short keep-alive session
  var i = 0;
  while (i < n) {
    var b = ssl_buf(1 + (i % 6), 64);   // handshake + record buffers
    b[0] = i;
    free(b);
    i = i + 1;
  }
  // the session ticket outlives the request: the ticket cache keeps the
  // watchpoint slots occupied by live objects between requests
  var ticket = ngx_palloc(48);
  sess[r] = ticket;
  var resp = ngx_palloc(192);
  resp[0] = hdr[0] + body[0];
  free(resp);
  free(body);
  free(hdr);
  free(conn);
  return 0;
}
|}

let nginx_palloc =
  {|
// core/ngx_palloc.c -- nginx pool allocator: one call site shared by all
// nginx allocations; stack offsets disambiguate contexts (module nginx)
fn ngx_palloc(size) {
  return malloc(size);
}
|}

let openssl_mem =
  {|
// crypto/mem.c -- CRYPTO_malloc: every OpenSSL allocation funnels through
// this one call site; calling contexts differ only by stack offset, which
// is exactly the disambiguation the paper's context key relies on
// (module openssl)
fn crypto_malloc(size) {
  return malloc(size);
}
|}

let openssl_bn =
  {|
// crypto/bn_ctx.c -- BN_CTX pool: initialization walks the pool to many
// depths, minting one allocation context per depth (module openssl)
fn bn_ctx_get(d, size) {
  if (d > 0) { return bn_ctx_get(d - 1, size); }
  return crypto_malloc(size);
}

fn ngx_ssl_init() {
  var d = 1;
  while (d <= 284) {
    var t = bn_ctx_get(d, 48);
    t[0] = d;
    free(t);
    d = d + 1;
  }
  sleep_ms(400 + rand(200));
  return 0;
}
|}

let openssl_heartbeat =
  {|
// ssl/t1_lib.c -- tls1_process_heartbeat, the vulnerable routine
// (module openssl)
fn ssl_buf(d, size) {
  if (d > 0) { return ssl_buf(d - 1, size); }
  return crypto_malloc(size);
}

fn tls1_process_heartbeat(claimed) {
  // the SSL3 record buffer holding the heartbeat request: 80 bytes, of
  // which only 16 are attacker-supplied payload
  var record = crypto_malloc(80);
  var i = 0;
  while (i < 16) {
    store8(record, i, 77 + i);
    i = i + 1;
  }
  sleep_ms(5 + rand(10));
  // concurrent connections keep allocating between the request's arrival
  // and the reply: these can steal the record buffer's watchpoint
  var j = 0;
  while (j < 16) {
    var ob = ssl_buf(1 + (j % 6), 64);
    ob[0] = j;
    free(ob);
    j = j + 1;
  }
  // response: 1 + 2 + claimed + 16 bytes of padding in the real code
  var bp = crypto_malloc(claimed + 16);
  // CVE-2014-0160: copies [claimed] bytes from a 80-byte buffer
  memcpy(bp, record, claimed);
  var echoed = load8(bp, 0);
  free(bp);
  free(record);
  return echoed;
}
|}

let app =
  { App_def.name = "Heartbleed";
    vuln = Report.Over_read;
    reference = "CVE-2014-0160";
    units =
      [ { Program.file = "nginx/nginx.c"; module_name = "nginx"; source = nginx_main };
        { Program.file = "nginx/ngx_http_request.c"; module_name = "nginx";
          source = nginx_request };
        { Program.file = "nginx/core/ngx_palloc.c"; module_name = "nginx";
          source = nginx_palloc };
        { Program.file = "openssl/crypto/mem.c"; module_name = "openssl";
          source = openssl_mem };
        { Program.file = "openssl/crypto/bn_ctx.c"; module_name = "openssl";
          source = openssl_bn };
        { Program.file = "openssl/ssl/t1_lib.c"; module_name = "openssl";
          source = openssl_heartbeat } ];
    buggy_inputs = [| 4096 |];
    benign_inputs = [| 16 |];
    instrumented_modules = [ "nginx"; "openssl" ];
    bug_in_library = false;
    expected_naive_detectable = false }
