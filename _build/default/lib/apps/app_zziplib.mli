(** Zziplib-0.13.62 (CVE-2017-5974): central-directory over-read inside the uninstrumented library; naive policy scores 0/1000.

    See the implementation header for the full model rationale; fields
    are documented in {!Buggy_app}. *)

val app : App_def.t
