(* Memcached-1.4.25 (CVE-2016-8706 / TALOS-2016-0221): heap over-write in
   the SASL authentication handler — the copied authentication data length
   is attacker-controlled and overruns the item buffer.  Table III: 74
   contexts, 442 allocations, the overflow striking at the very end of the
   run.  Start-up pins four long-lived structures (hash table, slab list,
   stats, settings) so the naive policy never frees a watchpoint (0/1000);
   four worker threads then churn items before the malicious SASL request
   arrives.  The item-buffer context has been allocated and watched many
   times by then, so the preempting policies detect the bug in roughly
   16–18% of executions.

   input(0): declared SASL data length — 96 overruns the 64-byte item
   (buggy), 32 fits (benign). *)

let main_source =
  {|
// memcached.c -- start-up and dispatch (module memcached)
fn main() {
  var claimed = input(0);
  var hashtab = malloc(512);       // #1: primary hash table, lives forever
  var slabs = malloc(256);         // #2: slab class list, lives forever
  var stats = malloc(128);         // #3: global stats, lives forever
  var settings = malloc(64);       // #4: settings struct, lives forever
  hashtab[0] = slabs;
  hashtab[1] = stats;
  hashtab[2] = settings;
  slabs_init();
  sleep_ms(900 + rand(300));

  var w = 0;
  while (w < 4) {
    spawn("worker_loop", w);
    // ordinary clients authenticate between worker batches
    var ok = sasl_auth(32);
    hashtab[4 + w] = ok;
    w = w + 1;
  }

  // reconnecting clients authenticate benignly before the attack
  var okA = sasl_auth(32);
  var okB = sasl_auth(32);
  var okC = sasl_auth(32);
  var okD = sasl_auth(32);
  hashtab[3] = okA + okB + okC + okD;

  // the malicious SASL authentication request arrives last
  var rc = sasl_auth(claimed);
  print("sasl:", rc);
  return 0;
}
|}

let slabs_source =
  {|
// slabs.c -- slab subsystem initialization (module memcached)
fn slab_page(d, size) {
  if (d > 0) { return slab_page(d - 1, size); }
  return malloc(size);
}

fn slabs_init() {
  // one page descriptor per slab class: 52 one-shot contexts
  var d = 1;
  while (d <= 52) {
    var page = slab_page(d, 56);
    page[0] = d;
    free(page);
    d = d + 1;
  }
  // spare pages for class 7: same allocation context as the sweep's
  var x = 0;
  while (x < 1) {
    var page2 = slab_page(7, 56);
    page2[0] = 7;
    free(page2);
    x = x + 1;
  }
  return 0;
}
|}

let items_source =
  {|
// items.c + thread.c -- item management and worker threads
// (module memcached)
fn item_alloc(d, size) {
  if (d > 0) { return item_alloc(d - 1, size); }
  return malloc(size);
}

fn worker_loop(w) {
  var conn = malloc(96);           // connection state, one per worker
  var req = 0;
  while (req < 42) {
    // item buffers: the contexts the SASL buffer will later share
    var it = item_alloc(1 + (req % 11), 64);
    it[0] = w * 100 + req;
    var resp = malloc(48);         // response buffer
    resp[0] = it[0];
    free(resp);
    free(it);
    if (req % 4 == 0) { sleep_ms(250 + rand(250)); }
    req = req + 1;
  }
  free(conn);
  return 0;
}
|}

let sasl_source =
  {|
// sasl_defs.c -- the vulnerable authentication path (module memcached)
fn sasl_auth(claimed) {
  // the final request's working set occupies the free watchpoints first
  var conn = malloc(96);
  var hdr = malloc(24);
  var key = malloc(32);
  var val = malloc(40);
  sleep_ms(40 + rand(40));

  // the item holding the authentication data: same allocation context as
  // the workers' item buffers, long since degraded
  var it = item_alloc(3, 64);

  // TALOS-2016-0221: copies [claimed] bytes into the 64-byte item
  var i = 0;
  while (i < claimed) {
    store8(it, i, (i * 17) % 256);
    i = i + 1;
  }

  var rc = load8(it, 0);
  free(it);
  free(val);
  free(key);
  free(hdr);
  free(conn);
  return rc;
}
|}

let app =
  { App_def.name = "Memcached";
    vuln = Report.Over_write;
    reference = "CVE-2016-8706";
    units =
      [ { Program.file = "memcached.c"; module_name = "memcached"; source = main_source };
        { Program.file = "slabs.c"; module_name = "memcached"; source = slabs_source };
        { Program.file = "items.c"; module_name = "memcached"; source = items_source };
        { Program.file = "sasl_defs.c"; module_name = "memcached"; source = sasl_source } ];
    buggy_inputs = [| 96 |];
    benign_inputs = [| 32 |];
    instrumented_modules = [ "memcached" ];
    bug_in_library = false;
    expected_naive_detectable = false }
