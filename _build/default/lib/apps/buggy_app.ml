type t = App_def.t = {
  name : string;
  vuln : Report.kind;
  reference : string;
  units : Program.unit_src list;
  buggy_inputs : int array;
  benign_inputs : int array;
  instrumented_modules : string list;
  bug_in_library : bool;
  expected_naive_detectable : bool;
}

let programs : (string, Program.t) Hashtbl.t = Hashtbl.create 16

let program t =
  match Hashtbl.find_opt programs t.name with
  | Some p -> p
  | None ->
    let p = Program.load_exn t.units in
    Hashtbl.add programs t.name p;
    p

(* Table I order (alphabetical). *)
let all () =
  [ App_gzip.app;
    App_heartbleed.app;
    App_libdwarf.app;
    App_libhx.app;
    App_libtiff.app;
    App_memcached.app;
    App_mysql.app;
    App_polymorph.app;
    App_zziplib.app ]

let by_name name =
  let lname = String.lowercase_ascii name in
  List.find_opt (fun a -> String.lowercase_ascii a.name = lname) (all ())

let names () = List.map (fun a -> a.name) (all ())
