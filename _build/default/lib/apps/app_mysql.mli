(** MySQL-5.5.19 (CVE-2012-5612): crafted-statement format-buffer over-write; Table III census 488 contexts / 57,464 allocations.

    See the implementation header for the full model rationale; fields
    are documented in {!Buggy_app}. *)

val app : App_def.t
