type t = {
  name : string;
  vuln : Report.kind;
  reference : string;
  units : Program.unit_src list;
  buggy_inputs : int array;
  benign_inputs : int array;
  instrumented_modules : string list;
  bug_in_library : bool;
  expected_naive_detectable : bool;
}
