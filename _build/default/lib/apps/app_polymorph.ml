(* Polymorph-0.4.0 (BugBench): converts Windows-style file names to Unix
   style; the converted name is written into a fixed buffer with no length
   check.  Like Gzip this is a single-context, single-allocation program
   (Table III: 1/1/1/1) with a continuous over-write.
   input(0) is the original name length: 300 overruns the 256-byte buffer. *)

let source =
  {|
// polymorph.c -- model of polymorph-0.4.0 convert_fileName()
fn lower(c) {
  if (c >= 65 && c <= 90) { return c + 32; }
  return c;
}

fn convert(dst, len) {
  var i = 0;
  while (i < len) {
    var c = 65 + ((i * 7) % 58);
    store8(dst, i, lower(c));    // writes the converted character
    i = i + 1;
  }
  store8(dst, len, 0);           // NUL terminator can also overflow
  return len;
}

fn main() {
  var namelen = input(0);
  var newname = malloc(256);     // fixed conversion buffer
  convert(newname, namelen);
  print("polymorph:", load8(newname, 0));
  free(newname);
  return 0;
}
|}

let app =
  { App_def.name = "Polymorph";
    vuln = Report.Over_write;
    reference = "BugBench";
    units = [ { Program.file = "polymorph.c"; module_name = "polymorph"; source } ];
    buggy_inputs = [| 300 |];
    benign_inputs = [| 100 |];
    instrumented_modules = [ "polymorph" ];
    bug_in_library = false;
    expected_naive_detectable = true }
