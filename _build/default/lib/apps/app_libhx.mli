(** LibHX-3.4 (CVE-2010-2947): HX_split under-counted vector over-write; the overflowed object is allocation #1.

    See the implementation header for the full model rationale; fields
    are documented in {!Buggy_app}. *)

val app : App_def.t
