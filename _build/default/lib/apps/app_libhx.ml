(* LibHX-3.4 (CVE-2010-2947): HX_split() under-counts delimiters and
   allocates its result vector one slot short, then writes the extra
   terminator slot past the end.  Table III: 4 contexts, 5 allocations; the
   overflowing object is the very first allocation (vector first, field
   strings after), so the no-preemption policy always holds its watchpoint
   until the overflow — while preempting policies occasionally give the
   slot away to a later field allocation during the parse (the paper
   measures 885–929/1000).  The bug lives inside libHX.so: ASan misses it
   when the library is not instrumented.

   input(0): 1 = the miscounting input (buggy), 0 = a benign line. *)

let app_source =
  {|
// fstab.c -- application using libHX (instrumented)
fn main() {
  var buggy = input(0);
  var vec = hx_split(3, buggy);
  print("fields:", vec[0]);
  free(vec);
  return 0;
}
|}

let lib_source =
  {|
// string.c -- model of libHX's HX_split (prebuilt library, uninstrumented)
fn hx_strdup_first(len) {
  return malloc(len);
}

fn hx_strdup_rest(len) {
  return malloc(len);
}

fn hx_split(nfields, buggy) {
  // The miscount: the buggy input makes HX_split allocate one slot too few.
  var slots = nfields + 1;
  if (buggy == 1) { slots = nfields; }
  var vec = malloc(slots * 8);      // the overflowed object: allocation #1
  sleep_ms(2800 + rand(3100));      // tokenizing a large config line

  var f0 = hx_strdup_first(16);     // allocation #2
  vec[0] = f0;
  sleep_ms(1300 + rand(1500));

  var i = 1;
  while (i < nfields) {             // allocations #3, #4 share one context
    var f = hx_strdup_rest(16);
    vec[i] = f;
    sleep_ms(800 + rand(900));
    i = i + 1;
  }

  // audit-log line for the parsed entry: allocation #5, a fresh context
  // that can steal the vector's watchpoint right before the overflow
  var logbuf = malloc(48);
  logbuf[0] = nfields;

  vec[nfields] = 0;                 // terminator: overflows when miscounted
  free(logbuf);
  return vec;
}
|}

let app =
  { App_def.name = "LibHX";
    vuln = Report.Over_write;
    reference = "CVE-2010-2947";
    units =
      [ { Program.file = "fstab.c"; module_name = "app"; source = app_source };
        { Program.file = "string.c"; module_name = "libhx"; source = lib_source } ];
    buggy_inputs = [| 1 |];
    benign_inputs = [| 0 |];
    instrumented_modules = [ "app" ];
    bug_in_library = true;
    expected_naive_detectable = true }
