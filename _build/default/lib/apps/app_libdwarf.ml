(* Libdwarf-20161021 (CVE-2016-9276): heap over-read in
   dwarf_get_aranges_list — a malformed .debug_aranges section drives the
   cursor past the end of the aranges buffer.  Table III: 26 contexts and
   152 allocations in total, 24 contexts / 147 allocations before the
   overflowed object.  The model frees a section scratch buffer right
   before allocating the aranges buffer, so a watchpoint slot is free at
   that moment: the naive policy therefore holds the watch until the
   over-read and scores 1000/1000, while preempting policies sometimes
   hand the slot to one of the handful of later allocations first
   (~46–48% detection in the paper).

   input(0): declared length of the last aranges tuple set — 48 runs the
   cursor past the 96-byte buffer (buggy); 24 stays inside (benign). *)

let app_source =
  {|
// dwarfdump.c -- the dwarfdump-like driver (instrumented)
fn main() {
  var declared = input(0);
  var dbg = dwarf_init();
  dwarf_load_sections(dbg);
  var count = dwarf_get_aranges(dbg, declared);
  print("aranges:", count);
  dwarf_finish(dbg);
  return 0;
}
|}

let lib_source =
  {|
// dwarf_init.c + dwarf_arange.c -- model of libdwarf (instrumented: the
// paper reports ASan detects this one, so the library is built with it)
fn alloc_de(d, size) {
  // _dwarf_get_alloc look-alike: depth disambiguates allocation contexts
  if (d > 0) { return alloc_de(d - 1, size); }
  return malloc(size);
}

fn dwarf_init() {
  var dbg = malloc(128);         // #1: the Dwarf_Debug handle, lives forever
  var err_stack = malloc(64);    // #2: error frame pool, resized mid-run
  var aranges = malloc(96);      // #3: .debug_aranges, loaded eagerly and
                                 //     walked only at the very end
  var names = malloc(96);        // #4: section-name table, rebuilt mid-run
  dbg[1] = err_stack;
  dbg[2] = names;
  dbg[3] = aranges;
  fill_section(aranges, 96);
  sleep_ms(800 + rand(400));
  return dbg;
}

fn dwarf_load_sections(dbg) {
  // one compilation unit at a time; internal tables appear as parsing
  // discovers them, and each CU keeps a small live working set whose
  // watchpoint traffic can preempt the aranges buffer's watchpoint
  var cu = 0;
  while (cu < 25) {
    if (cu < 14) {
      var tab = alloc_de(1 + cu, 48);   // one-shot contexts, mostly early
      tab[0] = cu;
      free(tab);
    }
    if (cu < 2) {
      var tab2 = alloc_de(15 + cu, 48);
      tab2[0] = cu;
      free(tab2);
    }
    var die = malloc(72);
    var abbrev = malloc(56);
    var line = malloc(64);
    var n_str = 2;
    if (cu == 5) { n_str = 4; }         // one CU with extra string data
    var s2 = 0;
    while (s2 < n_str) {
      var str = malloc(24);
      die[1] = str;
      free(str);
      s2 = s2 + 1;
    }
    die[0] = abbrev[0] + line[0];
    sleep_ms(900 + rand(500));
    free(line);
    free(abbrev);
    free(die);
    if (cu == 12) { free(dbg[1]); dbg[1] = 0; }  // error pool resized away
    if (cu == 17) { free(dbg[2]); dbg[2] = 0; }  // name table rebuilt
    cu = cu + 1;
  }
  return 0;
}

fn dwarf_get_aranges(dbg, declared) {
  var aranges = dbg[3];
  // CVE-2016-9276: the declared tuple length drives the cursor past the
  // end of the buffer and the walker reads one word beyond it
  var off = 0;
  var sum = 0;
  while (off < 64 + declared) {
    sum = sum + aranges[off / 8];
    off = off + 8;
  }
  // post-walk bookkeeping: the few allocations after the overflow
  var hdr = alloc_de(4, 32);
  var s = 0;
  var set_a = 0;
  while (s < 3) {
    set_a = malloc(24);
    dbg[4 + s] = set_a;
    s = s + 1;
  }
  var strtab = alloc_de(4, 56);  // same context as the header scratch
  free(hdr);
  free(dbg[4]);
  free(dbg[5]);
  free(dbg[6]);
  free(strtab);
  free(aranges);
  dbg[3] = 0;
  return sum & 0xFF;
}

fn fill_section(buf, n) {
  var i = 0;
  while (i < n) {
    store8(buf, i, (i * 11) % 240);
    i = i + 1;
  }
  return n;
}

fn dwarf_finish(dbg) {
  free(dbg);
  return 0;
}
|}

let app =
  { App_def.name = "Libdwarf";
    vuln = Report.Over_read;
    reference = "CVE-2016-9276";
    units =
      [ { Program.file = "dwarfdump.c"; module_name = "dwarfdump"; source = app_source };
        { Program.file = "dwarf_arange.c"; module_name = "libdwarf"; source = lib_source } ];
    buggy_inputs = [| 48 |];
    benign_inputs = [| 24 |];
    instrumented_modules = [ "dwarfdump"; "libdwarf" ];
    bug_in_library = false;
    expected_naive_detectable = true }
