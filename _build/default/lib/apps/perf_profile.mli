(** Profiles of the nineteen performance-evaluation applications
    (paper, Section V-B: thirteen PARSEC benchmarks plus six real
    multithreaded applications).

    The paper runs these natively on a two-socket Xeon; we cannot, so each
    application is characterized by the observable quantities Table IV
    reports (lines of code, allocation calling contexts, allocation count,
    thread count) plus the drivers of its overhead profile under each tool:
    virtual runtime, instrumented-access rate (what ASan pays per second),
    resident footprint (Table V's "Original" column), and object-size /
    lifetime shape.  {!Perf_driver} replays an allocation stream with these
    characteristics against any tool and measures virtual cycles and
    resident memory. *)

type t = {
  name : string;
  loc : int;                 (** source lines, Table IV (reported verbatim) *)
  contexts : int;            (** allocation calling contexts, Table IV *)
  allocations : int;         (** allocations in the native run, Table IV *)
  threads : int;             (** worker threads (PARSEC runs use 16) *)
  runtime_sec : float;       (** virtual duration of the native run *)
  access_rate : float;       (** instrumented memory accesses per second —
                                 the load ASan's shadow checks ride on; low
                                 for I/O-bound programs (Aget, Pfscan) and
                                 for programs spending time in
                                 uninstrumented libraries (Pbzip2) *)
  avg_obj_bytes : int;       (** mean allocation size *)
  baseline_kb : int;         (** native peak resident set, Table V "Original" *)
  hot_contexts : int;        (** contexts responsible for ~90% of allocations *)
  description : string;
}

val all : unit -> t list
(** Table IV order: the thirteen PARSEC benchmarks, then Aget, Apache,
    Memcached, MySQL, Pbzip2, Pfscan. *)

val by_name : string -> t option

val live_target : t -> int
(** Steady-state live-object count implied by the footprint and mean
    object size (at least 1). *)
