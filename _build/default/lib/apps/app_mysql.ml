(* MySQL-5.5.19 (CVE-2012-5612): heap-based overrun triggered through a
   crafted sequence of SQL statements (exploit-db 23076) — a format/sort
   buffer in the server is written past its end.  This is the paper's
   largest subject: Table III reports 488 allocation calling contexts and
   57,464 allocations in one buggy run, with the overflowed object arriving
   near the very end (445 contexts / 57,356 allocations before it).

   The model reproduces that scale: server start-up pins long-lived
   structures (so naive scores 0/1000), plugin and table-definition loading
   mints ~400 one-shot contexts through the my_malloc depth trick, and
   ~1,070 queries churn row buffers hard enough that the row-buffer context
   trips the paper's allocation-burst throttle (>5,000 allocations inside a
   10-second window).  The crafted statement's format buffer context has
   been exercised a few times by earlier admin statements, so the
   preempting policies land at roughly 16–17% detection.

   input(0): key count written into the 256-byte format buffer — 40 words
   (320 bytes) overflow it (buggy), 24 words fit (benign). *)

let main_source =
  {|
// mysqld.cc -- server start-up and the client session (module mysql)
fn main() {
  var keys = input(0);
  var tdc = malloc(512);           // #1: table definition cache, forever
  var acl = malloc(256);           // #2: privilege cache, forever
  var logbuf = malloc(128);        // #3: binlog buffer, forever
  var charset = malloc(192);       // #4: charset registry, forever
  tdc[0] = acl;
  tdc[1] = logbuf;
  tdc[2] = charset;
  plugin_init();
  sleep_ms(1200 + rand(400));

  var q = 0;
  while (q < 1075) {
    execute_query(q);
    if (q % 8 == 0) { sleep_ms(200 + rand(200)); }
    if (q % 250 == 249) {
      // occasional admin statement exercising the vulnerable path benignly
      var rc = format_keys(24);
      logbuf[0] = rc;
    }
    q = q + 1;
  }

  tdc_refresh();
  sleep_ms(200 + rand(200));

  // the crafted statement lands last
  var rc2 = format_keys(keys);
  print("mysqld: crafted statement returned", rc2);
  return 0;
}
|}

let mem_source =
  {|
// mysys/my_malloc.c -- the server-wide allocation wrapper (module mysql)
fn my_malloc(d, size) {
  if (d > 0) { return my_malloc(d - 1, size); }
  return malloc(size);
}
|}

let plugin_source =
  {|
// sql/sql_plugin.cc -- plugin + table-definition loading (module mysql)
fn plugin_init() {
  // one descriptor per plugin/table definition: 403 one-shot contexts
  var d = 1;
  while (d <= 403) {
    var desc = my_malloc(d, 64);
    desc[0] = d;
    free(desc);
    d = d + 1;
  }
  return 0;
}

fn tdc_refresh() {
  // late cache refresh: 66 more one-shot contexts, minted after the bulk
  // of the run so the context census keeps growing to the end
  var d = 404;
  while (d <= 468) {
    var node = my_malloc(d, 40);
    node[0] = d;
    free(node);
    d = d + 1;
  }
  return 0;
}
|}

let query_source =
  {|
// sql/sql_parse.cc -- query execution (module mysql)
fn execute_query(q) {
  var thd_buf = my_malloc(1 + (q % 12), 160);  // per-statement THD arena
  var parse = my_malloc(2, 96);                // parse tree root
  // row buffers: one context, ~53,500 allocations across the run -- this
  // is the context that triggers the burst throttle
  var nrows = 50;
  if (q == 500) { nrows = 42; }
  var r = 0;
  while (r < nrows) {
    var row = my_malloc(3, 120);
    row[0] = q + r;
    free(row);
    r = r + 1;
  }
  var net = my_malloc(4, 80);                  // network packet buffer
  net[0] = parse[0];
  free(net);
  free(parse);
  free(thd_buf);
  return 0;
}
|}

let item_source =
  {|
// sql/item_strfunc.cc -- the vulnerable format path (module mysql)
fn format_keys(keys) {
  // working set of the statement occupies free watchpoints first
  var item_a = malloc(48);
  var item_b = malloc(48);
  var tmp_tab = malloc(96);
  var sort_io = malloc(64);
  sleep_ms(30 + rand(30));

  // the 256-byte format buffer: CVE-2012-5612 writes [keys] words into it
  var fmt = my_malloc(6, 256);
  var k = 0;
  while (k < keys) {
    fmt[k] = k * 31;
    k = k + 1;
  }

  var rc = fmt[0];
  free(fmt);
  free(sort_io);
  free(tmp_tab);
  free(item_b);
  free(item_a);
  return rc;
}
|}

let app =
  { App_def.name = "MySQL";
    vuln = Report.Over_write;
    reference = "CVE-2012-5612";
    units =
      [ { Program.file = "sql/mysqld.cc"; module_name = "mysql"; source = main_source };
        { Program.file = "mysys/my_malloc.c"; module_name = "mysql"; source = mem_source };
        { Program.file = "sql/sql_plugin.cc"; module_name = "mysql"; source = plugin_source };
        { Program.file = "sql/sql_parse.cc"; module_name = "mysql"; source = query_source };
        { Program.file = "sql/item_strfunc.cc"; module_name = "mysql"; source = item_source } ];
    buggy_inputs = [| 40 |];
    benign_inputs = [| 24 |];
    instrumented_modules = [ "mysql" ];
    bug_in_library = false;
    expected_naive_detectable = false }
