lib/apps/app_zziplib.ml: App_def Program Report
