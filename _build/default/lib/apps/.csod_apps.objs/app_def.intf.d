lib/apps/app_def.mli: Program Report
