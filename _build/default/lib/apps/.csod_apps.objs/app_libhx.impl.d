lib/apps/app_libhx.ml: App_def Program Report
