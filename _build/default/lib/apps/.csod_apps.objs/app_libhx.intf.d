lib/apps/app_libhx.mli: App_def
