lib/apps/app_libdwarf.ml: App_def Program Report
