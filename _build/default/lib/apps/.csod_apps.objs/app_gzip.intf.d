lib/apps/app_gzip.mli: App_def
