lib/apps/app_libtiff.ml: App_def Program Report
