lib/apps/app_polymorph.ml: App_def Program Report
