lib/apps/buggy_app.mli: App_def Program Report
