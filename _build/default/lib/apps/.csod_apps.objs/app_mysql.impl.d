lib/apps/app_mysql.ml: App_def Program Report
