lib/apps/app_mysql.mli: App_def
