lib/apps/app_gzip.ml: App_def Program Report
