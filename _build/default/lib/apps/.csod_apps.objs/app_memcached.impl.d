lib/apps/app_memcached.ml: App_def Program Report
