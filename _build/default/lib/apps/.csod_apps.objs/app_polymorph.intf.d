lib/apps/app_polymorph.mli: App_def
