lib/apps/app_heartbleed.ml: App_def Program Report
