lib/apps/app_libdwarf.mli: App_def
