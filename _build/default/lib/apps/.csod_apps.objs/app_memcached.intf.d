lib/apps/app_memcached.mli: App_def
