lib/apps/app_def.ml: Program Report
