lib/apps/app_libtiff.mli: App_def
