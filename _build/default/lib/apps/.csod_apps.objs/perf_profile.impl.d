lib/apps/perf_profile.ml: List String
