lib/apps/perf_profile.mli:
