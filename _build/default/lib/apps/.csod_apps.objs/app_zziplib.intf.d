lib/apps/app_zziplib.mli: App_def
