lib/apps/buggy_app.ml: App_def App_gzip App_heartbleed App_libdwarf App_libhx App_libtiff App_memcached App_mysql App_polymorph App_zziplib Hashtbl List Program Report String
