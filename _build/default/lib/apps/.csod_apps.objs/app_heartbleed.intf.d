lib/apps/app_heartbleed.mli: App_def
