(** Libtiff-4.01 (CVE-2013-4243): gif2tiff raster over-write inside the uninstrumented library; ASan misses it, CSOD does not.

    See the implementation header for the full model rationale; fields
    are documented in {!Buggy_app}. *)

val app : App_def.t
