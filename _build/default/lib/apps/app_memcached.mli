(** Memcached-1.4.25 (CVE-2016-8706): SASL authentication over-write; Table III census 74 contexts / 442 allocations.

    See the implementation header for the full model rationale; fields
    are documented in {!Buggy_app}. *)

val app : App_def.t
