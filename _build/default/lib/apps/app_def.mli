(** The record describing one buggy-application model.  Lives in its own
    module so the per-application modules and the {!Buggy_app} registry can
    both depend on it; see {!Buggy_app} for field documentation. *)

type t = {
  name : string;
  vuln : Report.kind;
  reference : string;
  units : Program.unit_src list;
  buggy_inputs : int array;
  benign_inputs : int array;
  instrumented_modules : string list;
  bug_in_library : bool;
  expected_naive_detectable : bool;
}
