(** Registry of the nine buggy applications (paper, Table I).

    Each application is a MiniC model of the real program's allocation and
    access behaviour around its known heap overflow: the same vulnerability
    class (over-read / over-write), the same calling-context and allocation
    counts (Table III), the same position of the overflowing object within
    the allocation stream, and the same instrumentation boundary (whether
    the overflowing access lives inside a prebuilt library that ASan did
    not instrument).  Sources are organized as multiple compilation units
    with realistic file names so that symbolized reports read like the
    paper's Figure 6. *)

type t = App_def.t = {
  name : string;
  vuln : Report.kind;            (** expected class, per Table I *)
  reference : string;            (** CVE id or BugBench, per Table I *)
  units : Program.unit_src list;
  buggy_inputs : int array;      (** inputs that trigger the overflow *)
  benign_inputs : int array;     (** inputs for an overflow-free run *)
  instrumented_modules : string list;
      (** modules recompiled with ASan in the paper's comparison; accesses
          from other modules bypass ASan's checks *)
  bug_in_library : bool;
      (** true when the overflowing access executes inside a module outside
          [instrumented_modules] — the Libtiff / LibHX / Zziplib cases *)
  expected_naive_detectable : bool;
      (** Table II: does the no-preemption policy ever catch this bug? *)
}

val program : t -> Program.t
(** Load (parse + check) the model; memoized per app. *)

val all : unit -> t list
(** The nine applications, in Table I's alphabetical order. *)

val by_name : string -> t option
(** Case-insensitive lookup. *)

val names : unit -> string list
