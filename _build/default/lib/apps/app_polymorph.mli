(** Polymorph-0.4.0 (BugBench): file-name conversion over-write; Table III census 1 context / 1 allocation.

    See the implementation header for the full model rationale; fields
    are documented in {!Buggy_app}. *)

val app : App_def.t
