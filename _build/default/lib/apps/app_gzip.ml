(* Gzip-1.2.4 (BugBench): the classic filename-handling overflow.  gzip
   copies the input file name into a fixed-size buffer without checking its
   length; a long name overruns the buffer.  The model is minimal exactly
   as the real trace is: one allocation calling context, one allocation
   (Table III row "Gzip": 1/1/1/1), overflowed by a continuous byte copy.
   input(0) is the name length: 48 overruns the 32-byte buffer, 16 fits. *)

let source =
  {|
// gzip.c -- model of gzip-1.2.4 get_istat()/treat_file()
fn copy_name(dst, len) {
  var i = 0;
  while (i < len) {
    store8(dst, i, 97 + (i % 26)); // the attacker-controlled file name
    i = i + 1;
  }
  return i;
}

fn main() {
  var namelen = input(0);
  var ifname = malloc(32);        // MAX_PATH_LEN in the model
  copy_name(ifname, namelen);     // no bounds check: the bug
  print("gzip: compressing", load8(ifname, 0));
  free(ifname);
  return 0;
}
|}

let app =
  { App_def.name = "Gzip";
    vuln = Report.Over_write;
    reference = "BugBench";
    units = [ { Program.file = "gzip.c"; module_name = "gzip"; source } ];
    buggy_inputs = [| 48 |];
    benign_inputs = [| 16 |];
    instrumented_modules = [ "gzip" ];
    bug_in_library = false;
    expected_naive_detectable = true }
