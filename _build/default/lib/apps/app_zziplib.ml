(* Zziplib-0.13.62 (CVE-2017-5974): heap over-read in __zzip_get32
   (fetch.c) — a crafted ZIP's central-directory offsets make the parser
   read a 32-bit word past the end of the directory buffer.  Table III:
   13 contexts, 17 allocations, the over-read striking at the very end.
   The first four allocations are long-lived handles that are never freed
   before the bug, so the naive policy's four watchpoints are pinned on
   them forever and it scores 0/1000; the preempting policies catch the
   bug roughly 10% of the time because the directory buffer's context has
   already been allocated and watched repeatedly by then.  The bug is
   inside libzzip (uninstrumented for ASan).

   input(0): bytes of slack after the last entry — 0 means the crafted
   offset reads past the buffer end (buggy); 8 leaves room (benign). *)

let app_source =
  {|
// unzzip.c -- the unzip-like driver (instrumented)
fn main() {
  var slack = input(0);
  var zip = zzip_dir_open(slack);
  print("entries listed:", zip[0]);
  zzip_dir_close(zip);
  return 0;
}
|}

let lib_source =
  {|
// zip.c + fetch.c -- model of libzzip's directory parser (uninstrumented)
fn zzip_get32(buf, offset) {
  // fetch.c __zzip_get32: unchecked 4-byte little-endian load
  var b0 = load8(buf, offset);
  var b1 = load8(buf, offset + 1);
  var b2 = load8(buf, offset + 2);
  var b3 = load8(buf, offset + 3);
  return b0 + (b1 << 8) + (b2 << 16) + (b3 << 24);
}

fn entry_buffer(size) {
  return malloc(size);
}

fn zzip_dir_open(slack) {
  // long-lived handles: allocations #1..#4, freed only at close
  var dir = malloc(64);
  var io = malloc(32);
  var cache_a = malloc(48);
  var cache_b = malloc(48);
  dir[1] = io;
  dir[2] = cache_a;
  dir[3] = cache_b;
  sleep_ms(13000 + rand(4000));       // reading the archive from disk

  // per-entry parsing: one-off metadata allocations, distinct contexts
  var names = parse_names(3);         // allocations #5..#7
  var comment = malloc(24);           // #8
  var extra = malloc(24);             // #9
  var crc_tab = malloc(32);           // #10
  var tmp_hdr = malloc(16);           // #11
  var tmp_tail = malloc(16);          // #12
  free(comment);
  free(extra);
  free(crc_tab);
  free(tmp_hdr);
  free(tmp_tail);
  sleep_ms(2000 + rand(2000));

  // entry data buffers: one context, allocated (and often watched)
  // repeatedly; they stay live until after the directory walk, so the
  // watchpoints they hold are not released before the over-read
  var e = 0;
  while (e < 4) {                     // allocations #13..#16
    var ebuf = entry_buffer(40);
    ebuf[0] = e;
    cache_a[e] = ebuf;
    sleep_ms(700 + rand(600));
    e = e + 1;
  }

  sleep_ms(5000 + rand(3000));        // decompressing the large entries

  // the central-directory buffer: allocation #17, same context family
  var disk = entry_buffer(40);
  fill_directory(disk, 40 - slack);
  sleep_ms(500 + rand(500));

  // the crafted offset points at the last entry header: with no slack the
  // 4-byte fetch crosses the end of the buffer
  var off = 40 - slack;
  var sig = zzip_get32(disk, off);    // CVE-2017-5974: over-read
  dir[0] = sig & 0xFF;
  free(disk);
  var f = 0;
  while (f < 4) {
    free(cache_a[f]);
    f = f + 1;
  }
  free(names);
  return dir;
}

fn fill_directory(disk, n) {
  var i = 0;
  while (i < n) {
    store8(disk, i, (i * 13) % 250);
    i = i + 1;
  }
  return n;
}

fn parse_names(k) {
  var head = malloc(32);
  var n1 = malloc(16);
  var n2 = malloc(16);
  head[0] = n1;
  head[1] = n2;
  free(n1);
  free(n2);
  return head;
}

fn zzip_dir_close(dir) {
  free(dir[1]);
  free(dir[2]);
  free(dir[3]);
  free(dir);
  return 0;
}
|}

let app =
  { App_def.name = "Zziplib";
    vuln = Report.Over_read;
    reference = "CVE-2017-5974";
    units =
      [ { Program.file = "unzzip.c"; module_name = "unzzip"; source = app_source };
        { Program.file = "zip.c"; module_name = "zziplib"; source = lib_source } ];
    buggy_inputs = [| 0 |];
    benign_inputs = [| 8 |];
    instrumented_modules = [ "unzzip" ];
    bug_in_library = true;
    expected_naive_detectable = false }
