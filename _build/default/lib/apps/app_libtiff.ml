(* Libtiff-4.01 (CVE-2013-4243): heap overflow in gif2tiff's
   readgifimage() — a GIF whose declared dimensions exceed the allocated
   raster overruns the buffer.  Single context, single allocation
   (Table III: 1/1/1/1).  Crucially, both the allocation and the
   overflowing store execute inside the libtiff library unit: when the
   library is not recompiled with ASan, ASan never checks the accesses and
   misses the bug (paper, Section V-A1), while CSOD's watchpoints are
   instrumentation-free.  input(0)/input(1) are the GIF width/height. *)

let app_source =
  {|
// gif2tiff.c -- the tool's driver (instrumented application code)
fn main() {
  var raster = readgifimage(input(0), input(1));
  print("gif2tiff: first pixel", load8(raster, 0));
  free(raster);
  return 0;
}
|}

let lib_source =
  {|
// tif_gif.c -- model of libtiff's gif2tiff read path (prebuilt library)
fn readraster(raster, count) {
  var i = 0;
  while (i < count) {
    store8(raster, i, (i * 31) % 251);  // decoded GIF bytes
    i = i + 1;
  }
  return count;
}

fn readgifimage(width, height) {
  var raster = malloc(1024);            // sized for the declared 32x32
  readraster(raster, width * height);   // actual dimensions can be larger
  return raster;
}
|}

let app =
  { App_def.name = "Libtiff";
    vuln = Report.Over_write;
    reference = "CVE-2013-4243";
    units =
      [ { Program.file = "gif2tiff.c"; module_name = "gif2tiff"; source = app_source };
        { Program.file = "tif_gif.c"; module_name = "libtiff"; source = lib_source } ];
    buggy_inputs = [| 33; 32 |];
    benign_inputs = [| 32; 32 |];
    instrumented_modules = [ "gif2tiff" ];
    bug_in_library = true;
    expected_naive_detectable = true }
