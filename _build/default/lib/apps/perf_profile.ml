type t = {
  name : string;
  loc : int;
  contexts : int;
  allocations : int;
  threads : int;
  runtime_sec : float;
  access_rate : float;
  avg_obj_bytes : int;
  baseline_kb : int;
  hot_contexts : int;
  description : string;
}

(* LOC, contexts, allocations and baseline footprints are Table IV / V's
   published values.  Runtimes approximate native PARSEC full-input runs;
   access rates encode each program's memory intensity (and how much of it
   is visible to instrumentation): the levers behind Figure 7's shape. *)
let all () =
  [ { name = "Blackscholes"; loc = 479; contexts = 4; allocations = 4; threads = 16;
      runtime_sec = 100.0; access_rate = 2.2e8; avg_obj_bytes = 131072;
      baseline_kb = 613; hot_contexts = 4;
      description = "option pricing; three giant input arrays, no churn" };
    { name = "Bodytrack"; loc = 11_938; contexts = 81; allocations = 431_022; threads = 16;
      runtime_sec = 45.0; access_rate = 3.1e8; avg_obj_bytes = 64;
      baseline_kb = 34; hot_contexts = 10;
      description = "vision tracker; steady small-vector churn" };
    { name = "Canneal"; loc = 4_530; contexts = 10; allocations = 30_728_172; threads = 16;
      runtime_sec = 38.0; access_rate = 9.8e8; avg_obj_bytes = 88;
      baseline_kb = 940; hot_contexts = 3;
      description = "simulated annealing; tens of millions of tiny nodes" };
    { name = "Dedup"; loc = 37_307; contexts = 93; allocations = 4_074_135; threads = 16;
      runtime_sec = 32.0; access_rate = 3.4e8; avg_obj_bytes = 256;
      baseline_kb = 1_599; hot_contexts = 12;
      description = "compression pipeline; chunk buffers per stage" };
    { name = "Facesim"; loc = 45_748; contexts = 109; allocations = 4_746_070; threads = 16;
      runtime_sec = 110.0; access_rate = 2.9e8; avg_obj_bytes = 2048;
      baseline_kb = 2_422; hot_contexts = 14;
      description = "physics simulation; mesh state per frame" };
    { name = "Ferret"; loc = 40_997; contexts = 118; allocations = 139_246; threads = 16;
      runtime_sec = 3.0; access_rate = 3.2e8; avg_obj_bytes = 128;
      baseline_kb = 68; hot_contexts = 16;
      description = "similarity search; runs under five seconds, so tool
                     initialization dominates (paper, Section V-B)" };
    { name = "Fluidanimate"; loc = 880; contexts = 2; allocations = 229_910; threads = 16;
      runtime_sec = 35.0; access_rate = 2.6e8; avg_obj_bytes = 640;
      baseline_kb = 408; hot_contexts = 2;
      description = "particle simulation; two allocation sites only" };
    { name = "Freqmine"; loc = 2_709; contexts = 125; allocations = 4_255; threads = 16;
      runtime_sec = 28.0; access_rate = 3.8e8; avg_obj_bytes = 4096;
      baseline_kb = 1_241; hot_contexts = 20;
      description = "frequent itemset mining; few large arena allocations" };
    { name = "Raytrace"; loc = 36_871; contexts = 63; allocations = 45_037_327; threads = 16;
      runtime_sec = 62.0; access_rate = 4.4e8; avg_obj_bytes = 272;
      baseline_kb = 1_135; hot_contexts = 6;
      description = "ray tracer; tiny per-ray node churn at huge volume" };
    { name = "Streamcluster"; loc = 2_043; contexts = 21; allocations = 8_861; threads = 16;
      runtime_sec = 55.0; access_rate = 3.6e8; avg_obj_bytes = 272;
      baseline_kb = 111; hot_contexts = 4;
      description = "online clustering; block allocations up front" };
    { name = "Swaptions"; loc = 1_631; contexts = 10; allocations = 48_001_795; threads = 16;
      runtime_sec = 290.0; access_rate = 2.7e8; avg_obj_bytes = 16;
      baseline_kb = 9; hot_contexts = 2;
      description = "HJM pricing; the paper's burst-throttle example:
                     one context allocates millions of times in seconds" };
    { name = "Vips"; loc = 206_059; contexts = 400; allocations = 1_425_257; threads = 16;
      runtime_sec = 30.0; access_rate = 3.0e8; avg_obj_bytes = 192;
      baseline_kb = 59; hot_contexts = 30;
      description = "image pipeline; very wide context census" };
    { name = "X264"; loc = 33_817; contexts = 60; allocations = 35_753; threads = 16;
      runtime_sec = 21.0; access_rate = 9.6e8; avg_obj_bytes = 2048;
      baseline_kb = 486; hot_contexts = 8;
      description = "video encoder; extremely access-intensive frames" };
    { name = "Aget"; loc = 1_205; contexts = 14; allocations = 46; threads = 8;
      runtime_sec = 30.0; access_rate = 2.0e7; avg_obj_bytes = 1024;
      baseline_kb = 7; hot_contexts = 4;
      description = "parallel downloader; I/O-bound, few allocations" };
    { name = "Apache"; loc = 269_126; contexts = 56; allocations = 357; threads = 16;
      runtime_sec = 30.0; access_rate = 1.4e8; avg_obj_bytes = 512;
      baseline_kb = 5; hot_contexts = 8;
      description = "httpd serving 100k requests; pool allocator hides
                     most allocations from the interposer" };
    { name = "Memcached"; loc = 14_748; contexts = 85; allocations = 468; threads = 8;
      runtime_sec = 30.0; access_rate = 1.1e8; avg_obj_bytes = 256;
      baseline_kb = 7; hot_contexts = 10;
      description = "cache server under the python-memcached load script" };
    { name = "MySQL"; loc = 1_290_401; contexts = 1_186; allocations = 1_565_311; threads = 16;
      runtime_sec = 58.0; access_rate = 1.9e8; avg_obj_bytes = 224;
      baseline_kb = 124; hot_contexts = 40;
      description = "sysbench, 16 clients, 100k requests" };
    { name = "Pbzip2"; loc = 12_108; contexts = 13; allocations = 57_746; threads = 16;
      runtime_sec = 48.0; access_rate = 6.0e7; avg_obj_bytes = 65536;
      baseline_kb = 128; hot_contexts = 4;
      description = "parallel bzip2 of a 7 GB file; most time inside the
                     uninstrumented libbz2, so ASan sees few accesses" };
    { name = "Pfscan"; loc = 1_091; contexts = 6; allocations = 6; threads = 16;
      runtime_sec = 75.0; access_rate = 2.5e7; avg_obj_bytes = 524288;
      baseline_kb = 4_044; hot_contexts = 2;
      description = "parallel grep over 4 GB; I/O-bound scan buffers" } ]

let by_name name =
  let l = String.lowercase_ascii name in
  List.find_opt (fun p -> String.lowercase_ascii p.name = l) (all ())

let live_target t =
  max 1 (t.baseline_kb * 1024 * 3 / 4 / t.avg_obj_bytes)
