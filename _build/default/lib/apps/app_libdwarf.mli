(** Libdwarf-20161021 (CVE-2016-9276): aranges walker over-read of a long-lived early allocation; naive policy scores 1000/1000.

    See the implementation header for the full model rationale; fields
    are documented in {!Buggy_app}. *)

val app : App_def.t
