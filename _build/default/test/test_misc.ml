(* Cross-cutting tests: paper constants, cost-model sanity, allocation
   contexts, builtins, perf profiles, and grammar round-trip properties. *)

(* ---------- Params: the paper's constants ---------- *)

let feq = Alcotest.float 1e-12

let test_paper_constants () =
  let p = Params.default in
  Alcotest.check feq "initial probability 50%" 0.5 p.Params.initial_prob;
  Alcotest.check feq "degradation 0.001% per allocation" 1e-5 p.Params.degrade_per_alloc;
  Alcotest.check feq "halving per watch" 0.5 p.Params.watch_decay_factor;
  Alcotest.check feq "floor 0.001%" 1e-5 p.Params.min_prob;
  Alcotest.(check int) "burst threshold 5000" 5000 p.Params.burst_threshold;
  Alcotest.check feq "burst window 10s" 10.0 p.Params.burst_window_sec;
  Alcotest.check feq "burst probability 0.0001%" 1e-6 p.Params.burst_prob;
  Alcotest.check feq "revive to 0.01%" 1e-4 p.Params.revive_prob;
  Alcotest.check feq "watchpoint half-life 10s" 10.0 p.Params.installed_halflife_sec;
  Alcotest.(check bool) "near-FIFO default" true (p.Params.policy = Params.Near_fifo);
  Alcotest.(check bool) "evidence on by default" true p.Params.evidence;
  Alcotest.(check string) "policy names" "naive/random/near-FIFO"
    (String.concat "/"
       (List.map Params.policy_name [ Params.Naive; Params.Random; Params.Near_fifo ]))

let test_cost_sanity () =
  Alcotest.(check bool) "syscalls dwarf ordinary work" true
    (Cost.syscall > 100 * Cost.memory_access);
  Alcotest.(check bool) "shadow check is cheap" true (Cost.shadow_check < 10);
  Alcotest.(check bool) "full backtrace is expensive" true
    (Cost.backtrace_full > 10 * Cost.context_lookup);
  Alcotest.(check bool) "trap delivery beats a syscall" true
    (Cost.trap_delivery > Cost.syscall);
  Alcotest.(check bool) "2.5 GHz clock" true (Cost.cycles_per_second = 2_500_000_000);
  Alcotest.(check bool) "tool init costs are one-time large" true
    (Cost.csod_init > 1_000_000 && Cost.asan_init > 1_000_000)

(* ---------- Alloc_ctx ---------- *)

let test_alloc_ctx () =
  let c = Alloc_ctx.synthetic ~stack_offset:24 ~callsite:0x400 () in
  Alcotest.(check (pair int int)) "key" (0x400, 24) (Alloc_ctx.key c);
  Alcotest.(check bool) "key equality" true
    (Alloc_ctx.equal_key (1, 2) (1, 2) && not (Alloc_ctx.equal_key (1, 2) (2, 1)));
  Alcotest.(check bool) "hash nonnegative" true (Alloc_ctx.hash_key (1, 2) >= 0);
  Alcotest.(check bool) "hash separates components" true
    (Alloc_ctx.hash_key (1, 2) <> Alloc_ctx.hash_key (2, 1));
  Alcotest.(check (list int)) "synthetic backtrace" [ 0x400 ] (c.Alloc_ctx.backtrace ());
  let d = Alloc_ctx.synthetic ~callsite:7 () in
  Alcotest.(check int) "default offset" 0 d.Alloc_ctx.stack_offset

let test_baseline_tool () =
  let machine = Machine.create () in
  let heap = Heap.create machine in
  let tool = Tool.baseline heap in
  let ctx = Alloc_ctx.synthetic ~callsite:1 () in
  let p = tool.Tool.malloc ~size:40 ~ctx in
  Alcotest.(check bool) "allocates" true (Heap.is_live heap p);
  tool.Tool.on_access ~addr:p ~len:8 ~kind:Tool.Read ~site:0;
  tool.Tool.at_exit ();
  tool.Tool.free ~ptr:p;
  Alcotest.(check bool) "frees" false (Heap.is_live heap p);
  Alcotest.(check int) "no side memory" 0 (tool.Tool.extra_resident_bytes ());
  Alcotest.(check string) "name" "baseline" tool.Tool.name

(* ---------- Builtins ---------- *)

let test_builtins () =
  Alcotest.(check bool) "malloc known" true (Builtins.is_builtin "malloc");
  Alcotest.(check bool) "unknown" false (Builtins.is_builtin "mallocx");
  Alcotest.(check bool) "print variadic" true
    (Builtins.arity "print" = Some (Builtins.At_least 1));
  Alcotest.(check bool) "spawn 1..2" true
    (Builtins.arity "spawn" = Some (Builtins.Between (1, 2)));
  Alcotest.(check bool) "all entries well-formed" true
    (List.for_all (fun (name, _) -> name <> "" && Builtins.is_builtin name) Builtins.all)

(* ---------- Srcloc / Token ---------- *)

let test_srcloc_token () =
  let loc = Srcloc.v ~file:"a.c" ~line:12 ~col:3 in
  Alcotest.(check string) "srcloc renders file:line" "a.c:12" (Srcloc.to_string loc);
  Alcotest.(check string) "int token" "42" (Token.to_string (Token.INT 42));
  Alcotest.(check string) "string token quoted" "\"x\"" (Token.to_string (Token.STRING "x"));
  Alcotest.(check string) "keyword" "while" (Token.to_string Token.KW_WHILE);
  Alcotest.(check string) "operator" "<=" (Token.to_string Token.LE)

(* ---------- Perf profiles: Table IV data fidelity ---------- *)

let table4_expected =
  [ ("Blackscholes", 479, 4, 4); ("Bodytrack", 11_938, 81, 431_022);
    ("Canneal", 4_530, 10, 30_728_172); ("Dedup", 37_307, 93, 4_074_135);
    ("Facesim", 45_748, 109, 4_746_070); ("Ferret", 40_997, 118, 139_246);
    ("Fluidanimate", 880, 2, 229_910); ("Freqmine", 2_709, 125, 4_255);
    ("Raytrace", 36_871, 63, 45_037_327); ("Streamcluster", 2_043, 21, 8_861);
    ("Swaptions", 1_631, 10, 48_001_795); ("Vips", 206_059, 400, 1_425_257);
    ("X264", 33_817, 60, 35_753); ("Aget", 1_205, 14, 46);
    ("Apache", 269_126, 56, 357); ("Memcached", 14_748, 85, 468);
    ("MySQL", 1_290_401, 1_186, 1_565_311); ("Pbzip2", 12_108, 13, 57_746);
    ("Pfscan", 1_091, 6, 6) ]

let test_perf_profiles_table4 () =
  let ps = Perf_profile.all () in
  Alcotest.(check int) "nineteen applications" 19 (List.length ps);
  List.iter2
    (fun (p : Perf_profile.t) (name, loc, cc, allocs) ->
      Alcotest.(check string) "order" name p.Perf_profile.name;
      Alcotest.(check int) (name ^ " LOC") loc p.Perf_profile.loc;
      Alcotest.(check int) (name ^ " CC") cc p.Perf_profile.contexts;
      Alcotest.(check int) (name ^ " allocations") allocs p.Perf_profile.allocations)
    ps table4_expected

let test_perf_profiles_sane () =
  List.iter
    (fun (p : Perf_profile.t) ->
      Alcotest.(check bool) (p.Perf_profile.name ^ " live target positive") true
        (Perf_profile.live_target p >= 1);
      Alcotest.(check bool) (p.Perf_profile.name ^ " runtime positive") true
        (p.Perf_profile.runtime_sec > 0.0);
      Alcotest.(check bool) (p.Perf_profile.name ^ " hot <= contexts") true
        (p.Perf_profile.hot_contexts <= max 4 p.Perf_profile.contexts))
    (Perf_profile.all ());
  Alcotest.(check bool) "by_name works" true
    (Option.is_some (Perf_profile.by_name "canneal"));
  Alcotest.(check bool) "by_name misses" true (Perf_profile.by_name "doom" = None)

(* ---------- Lexer round-trip property ---------- *)

let token_gen =
  let open QCheck.Gen in
  oneof
    [ map (fun n -> Token.INT (abs n)) small_int;
      map
        (fun s -> Token.IDENT ("v" ^ String.concat "" (List.map string_of_int s)))
        (list_size (return 2) (int_bound 9));
      oneofl
        [ Token.KW_FN; Token.KW_VAR; Token.KW_IF; Token.KW_WHILE; Token.KW_RETURN;
          Token.LPAREN; Token.RPAREN; Token.LBRACE; Token.RBRACE; Token.COMMA;
          Token.SEMI; Token.ASSIGN; Token.PLUS; Token.MINUS; Token.STAR;
          Token.SLASH; Token.LT; Token.LE; Token.EQ; Token.NE; Token.AND;
          Token.OR ] ]

let prop_lexer_roundtrip =
  QCheck.Test.make ~name:"lexing a printed token stream yields it back" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_bound 30) token_gen))
    (fun tokens ->
      let src = String.concat " " (List.map Token.to_string tokens) in
      let relexed =
        List.filter_map
          (fun t -> if t.Token.tok = Token.EOF then None else Some t.Token.tok)
          (Lexer.tokenize ~file:"gen.mc" src)
      in
      relexed = tokens)

(* ---------- Random arithmetic: interpreter vs OCaml ---------- *)

let rec gen_expr depth st =
  let open QCheck.Gen in
  if depth = 0 then (map (fun n -> string_of_int (1 + abs n mod 100)) small_int) st
  else
    (frequency
       [ (1, map (fun n -> string_of_int (1 + (abs n mod 100))) small_int);
         ( 3,
           map3
             (fun op a b -> Printf.sprintf "(%s %s %s)" a op b)
             (oneofl [ "+"; "-"; "*" ])
             (gen_expr (depth - 1))
             (gen_expr (depth - 1)) ) ])
      st

let rec eval_ocaml s =
  (* tiny evaluator over the generated fully-parenthesized strings *)
  let s = String.trim s in
  if s.[0] <> '(' then int_of_string s
  else begin
    (* strip parens: "(a op b)" where a and b may be nested *)
    let inner = String.sub s 1 (String.length s - 2) in
    (* split at the top-level operator *)
    let depth = ref 0 in
    let split = ref (-1) in
    String.iteri
      (fun i c ->
        match c with
        | '(' -> incr depth
        | ')' -> decr depth
        | ('+' | '-' | '*') when !depth = 0 && !split < 0 && i > 0 -> split := i
        | _ -> ())
      inner;
    let op = inner.[!split] in
    let a = eval_ocaml (String.sub inner 0 (!split - 1)) in
    let b = eval_ocaml (String.sub inner (!split + 2) (String.length inner - !split - 2)) in
    match op with '+' -> a + b | '-' -> a - b | '*' -> a * b | _ -> assert false
  end

let prop_interp_matches_ocaml =
  QCheck.Test.make ~name:"interpreter agrees with OCaml on arithmetic" ~count:100
    (QCheck.make (gen_expr 4))
    (fun src_expr ->
      let program =
        Program.load_exn
          [ { Program.file = "gen.mc"; module_name = "gen";
              source = Printf.sprintf "fn main() { return %s; }" src_expr } ]
      in
      let machine = Machine.create () in
      let heap = Heap.create machine in
      let r = Interp.run ~machine ~tool:(Tool.baseline heap) ~program () in
      r.Interp.return_value = eval_ocaml src_expr)

let suite =
  [ Alcotest.test_case "paper constants" `Quick test_paper_constants;
    Alcotest.test_case "cost-model sanity" `Quick test_cost_sanity;
    Alcotest.test_case "allocation contexts" `Quick test_alloc_ctx;
    Alcotest.test_case "baseline tool" `Quick test_baseline_tool;
    Alcotest.test_case "builtins" `Quick test_builtins;
    Alcotest.test_case "srcloc and tokens" `Quick test_srcloc_token;
    Alcotest.test_case "perf profiles: Table IV data" `Quick test_perf_profiles_table4;
    Alcotest.test_case "perf profiles: sanity" `Quick test_perf_profiles_sane;
    QCheck_alcotest.to_alcotest prop_lexer_roundtrip;
    QCheck_alcotest.to_alcotest prop_interp_matches_ocaml ]
