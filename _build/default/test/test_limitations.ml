(* The paper's Limitations section (VI), as executable facts.  These tests
   assert that the reproduction has the same blind spots as the real
   system — a reproduction that detected more than CSOD would be wrong. *)

let mk ?(params = Params.default) () =
  let machine = Machine.create ~seed:77 () in
  let heap = Heap.create machine in
  let rt = Runtime.create ~params ~machine ~heap () in
  (rt, Runtime.tool rt, machine)

let ctx ?(off = 0) callsite = Alloc_ctx.synthetic ~callsite ~stack_offset:off ()

(* "CSOD may not be able to detect non-continuous overflows that skip the
   addresses of installed watchpoints." *)
let test_noncontinuous_overflow_missed () =
  let rt, tool, machine = mk () in
  let p = tool.Tool.malloc ~size:32 ~ctx:(ctx 1) in
  (* watched (startup); a strided overflow that jumps the boundary word *)
  Machine.store_word machine (p + 32 + 16) 0xBAD;
  Alcotest.(check bool) "skipping the watch word evades detection" false
    (Runtime.detected rt);
  (* the continuous version of the same bug IS caught *)
  Machine.store_word machine (p + 32) 0xBAD;
  Alcotest.(check bool) "the contiguous overflow is caught" true (Runtime.detected rt)

(* The canary word is 8 bytes past the rounded size: a strided write that
   skips it also survives the evidence check. *)
let test_noncontinuous_evades_canary () =
  let rt, tool, machine = mk () in
  for i = 1 to 4 do
    ignore (tool.Tool.malloc ~size:16 ~ctx:(ctx i))
  done;
  let p = tool.Tool.malloc ~size:32 ~ctx:(ctx 5) in
  Machine.store_word_unwatched machine (p + 32 + 16) 0xBAD;
  tool.Tool.free ~ptr:p;
  Runtime.finish rt;
  Alcotest.(check bool) "canary intact despite the (strided) overflow" false
    (Runtime.detected rt)

(* "DoubleTake and iReplayer only detect buffer over-writes ... leaving
   over-reads undetectable": CSOD's evidence mechanism shares that limit —
   reading past the end corrupts nothing, so only a live watchpoint can
   see it. *)
let test_overread_invisible_to_canary () =
  let params = { Params.default with Params.evidence = true } in
  let rt, tool, machine = mk ~params () in
  for i = 1 to 4 do
    ignore (tool.Tool.malloc ~size:16 ~ctx:(ctx i))
  done;
  (* unwatched object (slots are taken, fresh context loses the coin with
     seed 77's stream) *)
  let p = tool.Tool.malloc ~size:24 ~ctx:(ctx 5) in
  let was_watched = Runtime.detected rt in
  ignore was_watched;
  (* over-read via an unwatched path; then free + exit sweep *)
  ignore (Machine.load_word_unwatched machine (p + 24));
  tool.Tool.free ~ptr:p;
  Runtime.finish rt;
  Alcotest.(check bool) "no evidence of an over-read" false (Runtime.detected rt)

(* "Some objects are overflowed after a long period of time following
   their allocation.  Due to the algorithms employed, the watchpoint may
   be preempted prior to the overflow occurring." *)
let test_watchpoint_preempted_before_overflow () =
  let rt, tool, machine = mk () in
  let victim = tool.Tool.malloc ~size:32 ~ctx:(ctx 1) in
  for i = 2 to 4 do
    ignore (tool.Tool.malloc ~size:16 ~ctx:(ctx i))
  done;
  (* long quiet period: the victim's claim decays *)
  Machine.work machine (25 * Cost.cycles_per_second);
  (* a fresh context preempts it (probability 0.5; hammer until it wins) *)
  let stolen = ref false in
  let i = ref 0 in
  while (not !stolen) && !i < 200 do
    incr i;
    let p = tool.Tool.malloc ~size:16 ~ctx:(ctx (100 + !i)) in
    if
      not
        (List.exists
           (fun wp -> wp.Watch_table.obj_addr = victim)
           (Watch_table.live (Runtime.watch_table rt)))
    then stolen := true
    else tool.Tool.free ~ptr:p
  done;
  Alcotest.(check bool) "the old watchpoint was eventually preempted" true !stolen;
  (* the late overflow now goes unseen by the hardware *)
  Machine.store_word machine (victim + 32) 0xBAD;
  Alcotest.(check bool) "late over-write not trapped" true
    (List.for_all
       (fun r -> r.Report.source <> Report.Watchpoint)
       (Runtime.detections rt));
  (* ...but the evidence mechanism assuredly reports it at free *)
  tool.Tool.free ~ptr:victim;
  Alcotest.(check bool) "canary still convicts the over-write" true
    (List.exists
       (fun r -> r.Report.source = Report.Canary_free)
       (Runtime.detections rt))

(* ASan's corresponding limitation, quoted by the paper: "ASan cannot
   detect non-continuous overflows beyond the redzones."  Inside the
   redzone it beats CSOD on strides; beyond it, both are blind. *)
let test_asan_stride_comparison () =
  let machine = Machine.create () in
  let heap = Heap.create machine in
  let a = Asan.create ~redzone:16 ~machine ~heap () in
  let tool = Asan.tool a in
  let p = tool.Tool.malloc ~size:32 ~ctx:(ctx 9) in
  (* stride of 8 past the end: within the redzone, ASan catches it *)
  tool.Tool.on_access ~addr:(p + 32 + 8) ~len:8 ~kind:Tool.Write ~site:1;
  Alcotest.(check bool) "in-redzone stride caught by ASan" true (Asan.detected a);
  (* far stride beyond the redzone: missed *)
  let before = List.length (Asan.detections a) in
  tool.Tool.on_access ~addr:(p + 32 + 512) ~len:8 ~kind:Tool.Write ~site:1;
  Alcotest.(check int) "beyond-redzone stride missed by ASan" before
    (List.length (Asan.detections a))

let suite =
  [ Alcotest.test_case "non-continuous overflow missed (paper VI.2)" `Quick
      test_noncontinuous_overflow_missed;
    Alcotest.test_case "strided write evades the canary" `Quick
      test_noncontinuous_evades_canary;
    Alcotest.test_case "over-read invisible to evidence" `Quick
      test_overread_invisible_to_canary;
    Alcotest.test_case "preemption loses late overflows (paper VI.1)" `Quick
      test_watchpoint_preempted_before_overflow;
    Alcotest.test_case "ASan stride comparison (paper VI)" `Quick
      test_asan_stride_comparison ]

(* The flip side of the limitations: the no-false-alarms guarantee.
   "A watchpoint is only fired when the watched address is accessed ...
   it will never report false alarms."  Randomized in-bounds workloads
   must never produce a report, under any policy, evidence on or off. *)
let prop_no_false_alarms =
  let gen =
    QCheck.Gen.(list_size (int_range 1 12) (pair (int_range 1 64) (int_range 0 7)))
  in
  QCheck.Test.make ~name:"randomized in-bounds programs are never reported" ~count:60
    (QCheck.make gen)
    (fun spec ->
      List.for_all
        (fun policy ->
          let params =
            { Params.default with Params.policy; evidence = true }
          in
          let machine = Machine.create ~seed:13 () in
          let heap = Heap.create machine in
          let rt = Runtime.create ~params ~machine ~heap () in
          let tool = Runtime.tool rt in
          let live =
            List.map
              (fun (size, k) ->
                let size = size * 8 in
                let p =
                  tool.Tool.malloc ~size ~ctx:(Alloc_ctx.synthetic ~callsite:k ())
                in
                (* touch first, last and a middle word: all in bounds *)
                Machine.store_word machine p 1;
                Machine.store_word machine (p + size - 8) 2;
                ignore (Machine.load_word machine (p + (size / 2 / 8 * 8)));
                p)
              spec
          in
          List.iter (fun p -> tool.Tool.free ~ptr:p) live;
          Runtime.finish rt;
          not (Runtime.detected rt))
        [ Params.Naive; Params.Random; Params.Near_fifo ])

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_no_false_alarms ]
