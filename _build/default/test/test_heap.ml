(* Tests for the allocator substrate: size classes and the heap. *)

let test_size_classes () =
  Alcotest.(check int) "min request" 16 (Size_class.block_size (Size_class.classify 1));
  Alcotest.(check int) "zero treated as one" 16
    (Size_class.block_size (Size_class.classify 0));
  Alcotest.(check int) "exact class" 64 (Size_class.block_size (Size_class.classify 64));
  Alcotest.(check int) "rounds to 16-byte step" 80
    (Size_class.block_size (Size_class.classify 65));
  Alcotest.(check int) "largest small" 4096
    (Size_class.block_size (Size_class.classify 4096));
  (match Size_class.classify 4097 with
  | Size_class.Large n -> Alcotest.(check int) "large rounded" 4112 n
  | Size_class.Small _ -> Alcotest.fail "4097 must be large");
  Alcotest.check_raises "negative" (Invalid_argument "Size_class.classify: negative size")
    (fun () -> ignore (Size_class.classify (-1)))

let test_size_class_index () =
  Alcotest.(check (option int)) "first index" (Some 0)
    (Size_class.class_index (Size_class.classify 16));
  Alcotest.(check (option int)) "last index" (Some (Size_class.num_small_classes - 1))
    (Size_class.class_index (Size_class.classify 4096));
  Alcotest.(check (option int)) "large has none" None
    (Size_class.class_index (Size_class.classify 10000))

let prop_block_covers_request =
  QCheck.Test.make ~name:"block_size >= request, 16-aligned" ~count:500
    QCheck.(int_range 0 100_000)
    (fun size ->
      let b = Size_class.block_size (Size_class.classify size) in
      b >= max 1 size && b mod 16 = 0)

let mk_heap () =
  let m = Machine.create () in
  Heap.create m

let test_heap_basic () =
  let h = mk_heap () in
  let a = Heap.malloc h 100 in
  Alcotest.(check bool) "live" true (Heap.is_live h a);
  Alcotest.(check (option int)) "size recorded" (Some 100) (Heap.size_of h a);
  Alcotest.(check bool) "usable >= requested" true
    (Option.get (Heap.usable_size h a) >= 100);
  Alcotest.(check int) "one live object" 1 (Heap.live_objects h);
  Alcotest.(check int) "live bytes" 100 (Heap.live_bytes h);
  Heap.free h a;
  Alcotest.(check bool) "freed" false (Heap.is_live h a);
  Alcotest.(check int) "none live" 0 (Heap.live_objects h)

let test_heap_alignment () =
  let h = mk_heap () in
  for _ = 1 to 20 do
    let p = Heap.malloc h 33 in
    Alcotest.(check int) "16-aligned" 0 (p mod 16)
  done

let test_heap_reuse () =
  let h = mk_heap () in
  let a = Heap.malloc h 64 in
  Heap.free h a;
  let b = Heap.malloc h 64 in
  Alcotest.(check int) "freed block reused (LIFO)" a b

let test_heap_double_free () =
  let h = mk_heap () in
  let a = Heap.malloc h 10 in
  Heap.free h a;
  (try
     Heap.free h a;
     Alcotest.fail "double free must raise"
   with Heap.Error _ -> ());
  (try
     Heap.free h 0xDEAD000;
     Alcotest.fail "foreign free must raise"
   with Heap.Error _ -> ());
  Heap.free h 0 (* free(NULL) is a no-op *)

let test_heap_calloc () =
  let h = mk_heap () in
  let mem = Machine.mem (Heap.machine h) in
  (* dirty a block, free it, then calloc over the reused memory *)
  let a = Heap.malloc h 64 in
  Sparse_mem.fill mem a 64 0xFF;
  Heap.free h a;
  let b = Heap.calloc h ~count:8 ~size:8 in
  Alcotest.(check int) "same block" a b;
  for i = 0 to 63 do
    Alcotest.(check int) "zeroed" 0 (Sparse_mem.read_u8 mem (b + i))
  done

let test_heap_realloc () =
  let h = mk_heap () in
  let mem = Machine.mem (Heap.machine h) in
  let a = Heap.malloc h 32 in
  for i = 0 to 31 do
    Sparse_mem.write_u8 mem (a + i) (i + 1)
  done;
  (* growth beyond the block copies content *)
  let b = Heap.realloc h a 512 in
  Alcotest.(check bool) "moved" true (b <> a);
  for i = 0 to 31 do
    Alcotest.(check int) "content copied" (i + 1) (Sparse_mem.read_u8 mem (b + i))
  done;
  Alcotest.(check bool) "old block dead" false (Heap.is_live h a);
  (* shrink stays in place *)
  let c = Heap.realloc h b 64 in
  Alcotest.(check int) "shrink in place" b c;
  Alcotest.(check (option int)) "size updated" (Some 64) (Heap.size_of h c);
  (* realloc of null behaves as malloc; size 0 frees *)
  let d = Heap.realloc h 0 16 in
  Alcotest.(check bool) "realloc(NULL)" true (Heap.is_live h d);
  Alcotest.(check int) "realloc to 0 frees" 0 (Heap.realloc h d 0);
  Alcotest.(check bool) "gone" false (Heap.is_live h d);
  (try
     ignore (Heap.realloc h 0xBAD 8);
     Alcotest.fail "realloc of foreign pointer must raise"
   with Heap.Error _ -> ())

let test_heap_memalign () =
  let h = mk_heap () in
  List.iter
    (fun alignment ->
      let p = Heap.memalign h ~alignment ~size:100 in
      Alcotest.(check int) (Printf.sprintf "aligned to %d" alignment) 0 (p mod alignment);
      Alcotest.(check (option int)) "size recorded" (Some 100) (Heap.size_of h p);
      Heap.free h p)
    [ 16; 64; 256; 1024; 4096 ];
  (try
     ignore (Heap.memalign h ~alignment:24 ~size:8);
     Alcotest.fail "non-power-of-two alignment must raise"
   with Heap.Error _ -> ())

let test_heap_peak_tracking () =
  let h = mk_heap () in
  let a = Heap.malloc h 1000 in
  let b = Heap.malloc h 2000 in
  Heap.free h a;
  Alcotest.(check int) "peak survives frees" 3000 (Heap.peak_live_bytes h);
  Alcotest.(check int) "live is current" 2000 (Heap.live_bytes h);
  Alcotest.(check int) "counts" 2 (Heap.total_allocs h);
  Alcotest.(check int) "frees" 1 (Heap.total_frees h);
  Heap.free h b

let test_heap_iter_live () =
  let h = mk_heap () in
  let a = Heap.malloc h 24 in
  let b = Heap.malloc h 48 in
  let c = Heap.malloc h 72 in
  Heap.free h b;
  let seen = ref [] in
  Heap.iter_live (fun ~addr ~size -> seen := (addr, size) :: !seen) h;
  let sorted = List.sort compare !seen in
  Alcotest.(check (list (pair int int))) "live walk"
    (List.sort compare [ (a, 24); (c, 72) ])
    sorted

let test_heap_malloc_charges_clock () =
  let h = mk_heap () in
  let m = Heap.machine h in
  let before = Clock.cycles (Machine.clock m) in
  ignore (Heap.malloc h 8);
  Alcotest.(check int) "malloc_base charged" (before + Cost.malloc_base)
    (Clock.cycles (Machine.clock m))

(* Property: random malloc/free interleavings keep live objects disjoint
   and within their blocks. *)
let prop_no_overlap =
  QCheck.Test.make ~name:"live objects never overlap" ~count:60
    QCheck.(list (pair bool (int_range 1 300)))
    (fun ops ->
      let h = mk_heap () in
      let live = ref [] in
      List.iter
        (fun (is_alloc, size) ->
          if is_alloc || !live = [] then begin
            let p = Heap.malloc h size in
            live := (p, size) :: !live
          end
          else begin
            match !live with
            | (p, _) :: rest ->
              Heap.free h p;
              live := rest
            | [] -> ()
          end)
        ops;
      (* check pairwise disjointness of [p, p + usable) *)
      let ranges =
        List.map (fun (p, _) -> (p, p + Option.get (Heap.usable_size h p))) !live
      in
      let rec pairwise = function
        | [] -> true
        | (s1, e1) :: rest ->
          List.for_all (fun (s2, e2) -> e1 <= s2 || e2 <= s1) rest && pairwise rest
      in
      pairwise ranges)

let prop_free_then_size_none =
  QCheck.Test.make ~name:"size_of reflects liveness" ~count:100
    QCheck.(int_range 1 5000)
    (fun size ->
      let h = mk_heap () in
      let p = Heap.malloc h size in
      let before = Heap.size_of h p = Some size in
      Heap.free h p;
      before && Heap.size_of h p = None)

let suite =
  [ Alcotest.test_case "size classes" `Quick test_size_classes;
    Alcotest.test_case "size class indexing" `Quick test_size_class_index;
    QCheck_alcotest.to_alcotest prop_block_covers_request;
    Alcotest.test_case "heap basics" `Quick test_heap_basic;
    Alcotest.test_case "heap alignment" `Quick test_heap_alignment;
    Alcotest.test_case "heap block reuse" `Quick test_heap_reuse;
    Alcotest.test_case "heap double/foreign free" `Quick test_heap_double_free;
    Alcotest.test_case "heap calloc zeroes" `Quick test_heap_calloc;
    Alcotest.test_case "heap realloc" `Quick test_heap_realloc;
    Alcotest.test_case "heap memalign" `Quick test_heap_memalign;
    Alcotest.test_case "heap peak tracking" `Quick test_heap_peak_tracking;
    Alcotest.test_case "heap live walk" `Quick test_heap_iter_live;
    Alcotest.test_case "heap clock charge" `Quick test_heap_malloc_charges_clock;
    QCheck_alcotest.to_alcotest prop_no_overlap;
    QCheck_alcotest.to_alcotest prop_free_then_size_none ]
