(* Tests for the ASan baseline: shadow memory, quarantine, and the tool. *)

(* ---------- Shadow ---------- *)

let test_shadow_basic () =
  let s = Shadow.create () in
  Alcotest.(check bool) "clean by default" false (Shadow.is_poisoned s ~addr:64 ~len:8);
  Shadow.poison s ~addr:64 ~len:16;
  Alcotest.(check bool) "poisoned" true (Shadow.is_poisoned s ~addr:64 ~len:8);
  Alcotest.(check bool) "edge byte" true (Shadow.is_poisoned s ~addr:79 ~len:1);
  Alcotest.(check bool) "past region clean" false (Shadow.is_poisoned s ~addr:80 ~len:8);
  Shadow.unpoison s ~addr:64 ~len:16;
  Alcotest.(check bool) "unpoisoned" false (Shadow.is_poisoned s ~addr:64 ~len:16)

let test_shadow_partial_granule () =
  let s = Shadow.create () in
  (* poison bytes 13..15 of a granule starting at 8 (i.e. a 13-byte object
     at addr 8 with its rounding slack poisoned) *)
  Shadow.poison s ~addr:21 ~len:3;
  Alcotest.(check bool) "object bytes clean" false (Shadow.is_poisoned s ~addr:8 ~len:13);
  Alcotest.(check bool) "slack poisoned" true (Shadow.is_poisoned s ~addr:21 ~len:1);
  Alcotest.(check bool) "access spanning slack" true (Shadow.is_poisoned s ~addr:20 ~len:2)

let test_shadow_len_edges () =
  let s = Shadow.create () in
  Shadow.poison s ~addr:100 ~len:1;
  Alcotest.(check bool) "len 0 never poisoned" false (Shadow.is_poisoned s ~addr:100 ~len:0);
  Alcotest.(check bool) "single byte" true (Shadow.is_poisoned s ~addr:100 ~len:1);
  Alcotest.check_raises "negative poison" (Invalid_argument "Shadow: negative length")
    (fun () -> Shadow.poison s ~addr:0 ~len:(-1))

let prop_shadow_model =
  (* byte-set model *)
  let open QCheck in
  Test.make ~name:"shadow matches a byte-set model" ~count:150
    (list (triple bool (int_range 0 256) (int_range 0 40)))
    (fun ops ->
      let s = Shadow.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (poison, addr, len) ->
          if poison then begin
            Shadow.poison s ~addr ~len;
            for i = addr to addr + len - 1 do
              Hashtbl.replace model i ()
            done
          end
          else begin
            Shadow.unpoison s ~addr ~len;
            for i = addr to addr + len - 1 do
              Hashtbl.remove model i
            done
          end)
        ops;
      List.for_all
        (fun addr ->
          Shadow.is_poisoned s ~addr ~len:1 = Hashtbl.mem model addr)
        (List.init 300 Fun.id))

(* ---------- Quarantine ---------- *)

let test_quarantine_fifo_budget () =
  let q = Quarantine.create ~budget_bytes:100 in
  Alcotest.(check (list (pair int int))) "no eviction under budget" []
    (List.map
       (fun (b : Quarantine.block) -> (b.Quarantine.base, b.Quarantine.bytes))
       (Quarantine.push q { Quarantine.base = 1; bytes = 60 }));
  let evicted = Quarantine.push q { Quarantine.base = 2; bytes = 60 } in
  Alcotest.(check (list int)) "oldest evicted when over budget" [ 1 ]
    (List.map (fun (b : Quarantine.block) -> b.Quarantine.base) evicted);
  Alcotest.(check int) "held bytes" 60 (Quarantine.held_bytes q);
  Alcotest.(check int) "held blocks" 1 (Quarantine.held_blocks q);
  let all = Quarantine.drain q in
  Alcotest.(check int) "drain returns the rest" 1 (List.length all);
  Alcotest.(check int) "empty after drain" 0 (Quarantine.held_bytes q)

let test_quarantine_giant_block () =
  let q = Quarantine.create ~budget_bytes:10 in
  let evicted = Quarantine.push q { Quarantine.base = 7; bytes = 50 } in
  Alcotest.(check (list int)) "over-budget block evicted immediately" [ 7 ]
    (List.map (fun (b : Quarantine.block) -> b.Quarantine.base) evicted)

(* ---------- Asan tool ---------- *)

let mk_asan ?redzone ?instrumented () =
  let machine = Machine.create ~seed:3 () in
  let heap = Heap.create machine in
  let a = Asan.create ?redzone ?instrumented ~machine ~heap () in
  (a, Asan.tool a, heap)

let ctx = Alloc_ctx.synthetic ~callsite:1 ()

let test_asan_detects_overflow_in_redzone () =
  let a, tool, _ = mk_asan () in
  let p = tool.Tool.malloc ~size:24 ~ctx in
  (* in-bounds accesses are clean *)
  tool.Tool.on_access ~addr:p ~len:8 ~kind:Tool.Read ~site:1;
  tool.Tool.on_access ~addr:(p + 16) ~len:8 ~kind:Tool.Write ~site:1;
  Alcotest.(check bool) "no false positive" false (Asan.detected a);
  (* one-past-the-end write lands in the right redzone *)
  tool.Tool.on_access ~addr:(p + 24) ~len:8 ~kind:Tool.Write ~site:1;
  Alcotest.(check bool) "overflow detected" true (Asan.detected a);
  (* underflow hits the left redzone *)
  tool.Tool.on_access ~addr:(p - 1) ~len:1 ~kind:Tool.Read ~site:1;
  Alcotest.(check int) "two detections" 2 (List.length (Asan.detections a))

let test_asan_misses_beyond_redzone () =
  let a, tool, _ = mk_asan ~redzone:16 () in
  let p = tool.Tool.malloc ~size:32 ~ctx in
  (* a stride that skips the 16-byte redzone entirely *)
  tool.Tool.on_access ~addr:(p + 32 + 16) ~len:8 ~kind:Tool.Read ~site:1;
  Alcotest.(check bool) "beyond the redzone: missed (the paper's caveat)" false
    (Asan.detected a)

let test_asan_instrumentation_boundary () =
  let a, tool, _ =
    mk_asan ~instrumented:(fun site -> site < 100) ()
  in
  let p = tool.Tool.malloc ~size:16 ~ctx in
  (* overflowing access compiled inside an uninstrumented library *)
  tool.Tool.on_access ~addr:(p + 16) ~len:8 ~kind:Tool.Write ~site:500;
  Alcotest.(check bool) "library access unchecked" false (Asan.detected a);
  tool.Tool.on_access ~addr:(p + 16) ~len:8 ~kind:Tool.Write ~site:50;
  Alcotest.(check bool) "instrumented access checked" true (Asan.detected a)

let test_asan_use_after_free () =
  let a, tool, _ = mk_asan () in
  let p = tool.Tool.malloc ~size:32 ~ctx in
  tool.Tool.free ~ptr:p;
  tool.Tool.on_access ~addr:p ~len:8 ~kind:Tool.Read ~site:1;
  Alcotest.(check bool) "use-after-free caught while quarantined" true (Asan.detected a)

let test_asan_quarantine_delays_reuse () =
  let _, tool, heap = mk_asan () in
  let p = tool.Tool.malloc ~size:64 ~ctx in
  tool.Tool.free ~ptr:p;
  let q = tool.Tool.malloc ~size:64 ~ctx in
  Alcotest.(check bool) "freed block not immediately recycled" true (q <> p);
  Alcotest.(check bool) "heap still holds the quarantined block" true
    (Heap.live_objects heap >= 1)

let test_asan_redzone_validation () =
  let machine = Machine.create () in
  let heap = Heap.create machine in
  Alcotest.check_raises "redzone must be >= 16 and 8-aligned"
    (Invalid_argument "Asan.create: redzone must be a multiple of 8, at least 16")
    (fun () -> ignore (Asan.create ~redzone:8 ~machine ~heap ()))

let test_asan_charges_shadow_cost () =
  let machine = Machine.create () in
  let heap = Heap.create machine in
  let a = Asan.create ~machine ~heap () in
  let tool = Asan.tool a in
  let p = tool.Tool.malloc ~size:8 ~ctx in
  let before = Clock.cycles (Machine.clock machine) in
  tool.Tool.on_access ~addr:p ~len:8 ~kind:Tool.Read ~site:1;
  Alcotest.(check int) "shadow check cost charged" (before + Cost.shadow_check)
    (Clock.cycles (Machine.clock machine))

let test_asan_memory_accounting () =
  let a, tool, _ = mk_asan () in
  let before = Asan.extra_resident_bytes a in
  let p = tool.Tool.malloc ~size:1024 ~ctx in
  Alcotest.(check bool) "shadow grows with allocations" true
    (Asan.extra_resident_bytes a > before);
  tool.Tool.free ~ptr:p;
  Alcotest.(check bool) "quarantine holds freed bytes" true
    (Asan.extra_resident_bytes a > before)

let suite =
  [ Alcotest.test_case "shadow basics" `Quick test_shadow_basic;
    Alcotest.test_case "shadow partial granule" `Quick test_shadow_partial_granule;
    Alcotest.test_case "shadow length edges" `Quick test_shadow_len_edges;
    QCheck_alcotest.to_alcotest prop_shadow_model;
    Alcotest.test_case "quarantine FIFO + budget" `Quick test_quarantine_fifo_budget;
    Alcotest.test_case "quarantine giant block" `Quick test_quarantine_giant_block;
    Alcotest.test_case "asan detects redzone overflow" `Quick
      test_asan_detects_overflow_in_redzone;
    Alcotest.test_case "asan misses beyond redzone" `Quick test_asan_misses_beyond_redzone;
    Alcotest.test_case "asan instrumentation boundary" `Quick
      test_asan_instrumentation_boundary;
    Alcotest.test_case "asan use-after-free" `Quick test_asan_use_after_free;
    Alcotest.test_case "asan quarantine delays reuse" `Quick
      test_asan_quarantine_delays_reuse;
    Alcotest.test_case "asan redzone validation" `Quick test_asan_redzone_validation;
    Alcotest.test_case "asan shadow cost" `Quick test_asan_charges_shadow_cost;
    Alcotest.test_case "asan memory accounting" `Quick test_asan_memory_accounting ]
