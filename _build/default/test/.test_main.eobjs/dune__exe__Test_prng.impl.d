test/test_prng.ml: Alcotest Fun List Printf Prng QCheck QCheck_alcotest
