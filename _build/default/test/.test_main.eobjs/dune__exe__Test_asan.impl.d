test/test_asan.ml: Alcotest Alloc_ctx Asan Clock Cost Fun Hashtbl Heap List Machine QCheck QCheck_alcotest Quarantine Shadow Test Tool
