test/test_heap.ml: Alcotest Clock Cost Heap List Machine Option Printf QCheck QCheck_alcotest Size_class Sparse_mem
