test/test_misc.ml: Alcotest Alloc_ctx Builtins Cost Heap Interp Lexer List Machine Option Params Perf_profile Printf Program QCheck QCheck_alcotest Srcloc String Token Tool
