test/test_util.ml: Alcotest Chained_table Hashtbl Int List QCheck QCheck_alcotest Queue Ring Stats String Table_fmt Test
