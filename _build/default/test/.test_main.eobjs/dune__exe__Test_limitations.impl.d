test/test_limitations.ml: Alcotest Alloc_ctx Asan Cost Heap List Machine Params QCheck QCheck_alcotest Report Runtime Tool Watch_table
