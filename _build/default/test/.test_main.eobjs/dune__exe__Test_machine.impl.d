test/test_machine.ml: Alcotest Clock Cost Hw_breakpoint List Machine Printf QCheck QCheck_alcotest Sparse_mem Threads
