test/test_minic.ml: Alcotest Ast Heap Interp Lexer List Machine Option Parser Printf Program Sema Srcloc String Threads Token Tool
