test/test_apps.ml: Alcotest Buggy_app Config Execution List Option Oracle Params Printf Report String Tool
