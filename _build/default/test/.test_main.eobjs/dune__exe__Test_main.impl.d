test/test_main.ml: Alcotest Test_apps Test_asan Test_core Test_harness Test_heap Test_limitations Test_machine Test_minic Test_misc Test_pretty Test_prng Test_util
