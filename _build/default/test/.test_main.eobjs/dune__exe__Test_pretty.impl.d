test/test_pretty.ml: Alcotest Ast Buggy_app List Parser Pretty Printf Program QCheck QCheck_alcotest Srcloc
