(* The pretty-printer round-trip law: printing a checked program and
   reparsing it yields a structurally identical AST (code addresses and
   source locations aside).  The nine buggy application models double as
   the corpus of realistic programs. *)

let rec eq_expr (a : Ast.expr) (b : Ast.expr) =
  match (a.Ast.e, b.Ast.e) with
  | Ast.Int x, Ast.Int y -> x = y
  | Ast.Str x, Ast.Str y -> x = y
  | Ast.Var x, Ast.Var y -> x = y
  | Ast.Unop (o1, x), Ast.Unop (o2, y) -> o1 = o2 && eq_expr x y
  | Ast.Binop (o1, x1, y1), Ast.Binop (o2, x2, y2) ->
    o1 = o2 && eq_expr x1 x2 && eq_expr y1 y2
  | Ast.Call (f1, a1), Ast.Call (f2, a2) ->
    f1 = f2 && List.length a1 = List.length a2 && List.for_all2 eq_expr a1 a2
  | Ast.Index (p1, i1), Ast.Index (p2, i2) -> eq_expr p1 p2 && eq_expr i1 i2
  | _ -> false

let rec eq_stmt (a : Ast.stmt) (b : Ast.stmt) =
  match (a.Ast.s, b.Ast.s) with
  | Ast.Decl (x1, e1), Ast.Decl (x2, e2) -> x1 = x2 && eq_expr e1 e2
  | Ast.Assign (x1, e1), Ast.Assign (x2, e2) -> x1 = x2 && eq_expr e1 e2
  | Ast.Store (p1, i1, v1), Ast.Store (p2, i2, v2) ->
    eq_expr p1 p2 && eq_expr i1 i2 && eq_expr v1 v2
  | Ast.If (c1, t1, e1), Ast.If (c2, t2, e2) ->
    eq_expr c1 c2 && eq_block t1 t2 && eq_block e1 e2
  | Ast.While (c1, b1), Ast.While (c2, b2) -> eq_expr c1 c2 && eq_block b1 b2
  | Ast.For (i1, c1, s1, b1), Ast.For (i2, c2, s2, b2) ->
    eq_stmt i1 i2 && eq_expr c1 c2 && eq_stmt s1 s2 && eq_block b1 b2
  | Ast.Return None, Ast.Return None -> true
  | Ast.Return (Some e1), Ast.Return (Some e2) -> eq_expr e1 e2
  | Ast.Break, Ast.Break | Ast.Continue, Ast.Continue -> true
  | Ast.Expr e1, Ast.Expr e2 -> eq_expr e1 e2
  | _ -> false

and eq_block b1 b2 = List.length b1 = List.length b2 && List.for_all2 eq_stmt b1 b2

let eq_func (f1 : Ast.func) (f2 : Ast.func) =
  f1.Ast.fname = f2.Ast.fname && f1.Ast.params = f2.Ast.params
  && eq_block f1.Ast.body f2.Ast.body

let parse src =
  Parser.parse_unit ~counter:(ref 0) ~file:"rt.mc" ~module_name:"rt" src

let roundtrips src =
  let ast1 = parse src in
  let printed = Pretty.program_to_string ast1 in
  let ast2 =
    try parse printed
    with Parser.Parse_error (m, l) ->
      Alcotest.fail
        (Printf.sprintf "reparse failed at %s: %s\nprinted:\n%s" (Srcloc.to_string l) m
           printed)
  in
  List.length ast1 = List.length ast2 && List.for_all2 eq_func ast1 ast2

let test_roundtrip_features () =
  let src =
    "fn helper(a, b) {\n\
     var x = a + b * 2 - (a - b) * 3;\n\
     var y = a < b && b <= 10 || !(a == 0);\n\
     var z = (a | b) & (a ^ 255) << 2 >> 1;\n\
     var p = malloc(64);\n\
     p[0] = x;\n\
     p[x % 4] = p[0] + 1;\n\
     if (y) { x = 0 - x; } else if (z > 5) { x = z; } else { x = 1; }\n\
     while (x > 0) { x = x - 1; if (x == 2) { break; } continue; }\n\
     for (var i = 0; i < 4; i = i + 1) { z = z + p[i]; }\n\
     print(\"x:\\n\", x, \"tab\\t\", z);\n\
     free(p);\n\
     return x;\n\
     }\n\
     fn main() { return helper(3, 4); }"
  in
  Alcotest.(check bool) "feature-complete program round-trips" true (roundtrips src)

let test_roundtrip_buggy_apps () =
  List.iter
    (fun (app : Buggy_app.t) ->
      List.iter
        (fun (u : Program.unit_src) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s round-trips" app.Buggy_app.name u.Program.file)
            true
            (roundtrips u.Program.source))
        app.Buggy_app.units)
    (Buggy_app.all ())

let test_minimal_parens () =
  let check_str expected src =
    match parse (Printf.sprintf "fn main() { return %s; }" src) with
    | [ { Ast.body = [ { Ast.s = Ast.Return (Some e); _ } ]; _ } ] ->
      Alcotest.(check string) src expected (Pretty.expr_to_string e)
    | _ -> Alcotest.fail "unexpected parse"
  in
  check_str "1 + 2 * 3" "1 + (2 * 3)";
  check_str "(1 + 2) * 3" "(1 + 2) * 3";
  check_str "1 - (2 - 3)" "1 - (2 - 3)";
  check_str "1 - 2 - 3" "(1 - 2) - 3";
  check_str "a && b || c" "(a && b) || c";
  check_str "a && (b || c)" "a && (b || c)";
  check_str "-x * y" "(-x) * y";
  check_str "f(a, b)[2]" "f(a, b)[2]"

(* Generated-expression round-trip: print, reparse, compare. *)
let gen_ast =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun n -> Ast.Int (abs n)) small_int;
        oneofl [ Ast.Var "a"; Ast.Var "b"; Ast.Var "c" ] ]
  in
  let ops =
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Lt; Ast.Le; Ast.Eq; Ast.Ne;
      Ast.LAnd; Ast.LOr; Ast.BAnd; Ast.BOr; Ast.BXor; Ast.Shl; Ast.Shr ]
  in
  let mk e = { Ast.e; eloc = Srcloc.dummy; eaddr = 0 } in
  fix
    (fun self depth ->
      if depth = 0 then map mk leaf
      else
        frequency
          [ (1, map mk leaf);
            ( 3,
              map3
                (fun op a b -> mk (Ast.Binop (op, a, b)))
                (oneofl ops) (self (depth - 1)) (self (depth - 1)) );
            (1, map (fun a -> mk (Ast.Unop (Ast.Neg, a))) (self (depth - 1)));
            (1, map (fun a -> mk (Ast.Unop (Ast.Not, a))) (self (depth - 1)));
            ( 1,
              map2 (fun p i -> mk (Ast.Index (p, i))) (self (depth - 1))
                (self (depth - 1)) ) ])
    4

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"print/reparse preserves expression structure" ~count:300
    (QCheck.make gen_ast)
    (fun ast ->
      let printed = Pretty.expr_to_string ast in
      let src = Printf.sprintf "fn main() { var a = 1; var b = 2; var c = 3; return %s; }" printed in
      match parse src with
      | [ { Ast.body; _ } ] -> (
        match List.rev body with
        | { Ast.s = Ast.Return (Some e); _ } :: _ -> eq_expr ast e
        | _ -> false)
      | _ -> false)

let suite =
  [ Alcotest.test_case "feature round-trip" `Quick test_roundtrip_features;
    Alcotest.test_case "buggy apps round-trip" `Quick test_roundtrip_buggy_apps;
    Alcotest.test_case "minimal parentheses" `Quick test_minimal_parens;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip ]
