(* The crowdsourcing deployment story (paper, Sections I and IV-B).

   CSOD is "particularly suitable for the crowdsourcing or cloud
   environments, where a program will be executed repeatedly by a large
   number of users".  This example simulates such a fleet for every
   bundled buggy application through the fleet subsystem's sequential
   path (Evidence.fleet): each user executes the program once with a
   different seed; the runtime's persistent store of overflowing contexts
   is shared (the crowd aggregates evidence).  Once any user's canary or
   watchpoint catches the bug, every later execution pins the guilty
   context at probability 1.0 and catches it deterministically.

   For the parallel, epoch-based version of this simulation — thousands
   of users on a domain pool, evidence exchanged at epoch barriers — see
   `csod_run fleet` and the Fleet module.

     dune exec examples/crowdsource.exe *)

let () =
  Printf.printf "%-12s %-10s %16s %14s  %s\n" "app" "class" "first detection"
    "mechanism" "then";
  List.iter
    (fun (app : Buggy_app.t) ->
      let config = Config.csod_default in
      match Evidence.fleet ~app ~users:200 () with
      | None -> Printf.printf "%-12s not detected in 200 user executions\n" app.Buggy_app.name
      | Some (u, src) ->
        (* Replay the discovering execution into a store of our own (the
           fleet loop's store is internal), then check that the next user
           catches the bug with a watchpoint: the store knows the guilty
           context, so its probability is pinned to 1. *)
        let store = Persist.create () in
        ignore (Execution.run ~app ~config ~seed:u ~store ());
        let o = Execution.run ~app ~config ~seed:(u + 1000) ~store () in
        let confirmed =
          List.exists
            (fun r -> r.Report.source = Report.Watchpoint)
            o.Execution.reports
        in
        Printf.printf "%-12s %-10s %16s %14s  %s\n" app.Buggy_app.name
          (Report.kind_name app.Buggy_app.vuln)
          (Printf.sprintf "user #%d" u)
          (Report.source_name src)
          (if confirmed then "every later user catches it (context pinned)"
           else "later user missed it (unexpected)"))
    (Buggy_app.all ())
